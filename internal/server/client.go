package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// Delta is one match-delta notification delivered to a subscriber.
type Delta struct {
	// Query names the continuous query the delta belongs to.
	Query string
	// Update is the triggering graph update.
	Update stream.Update
	// Pos/Neg are the incremental match counts (|ΔM⁺|, |ΔM⁻|).
	Pos, Neg uint64
	// Seq is the query's produced-delta watermark; Dropped is the
	// cumulative overflow count at enqueue time. Delivered Seqs are
	// strictly increasing per query, and a gap counts exactly the frames
	// this subscriber missed — whether to queue overflow or to a
	// disconnect spanning a server restart (the watermark survives
	// crashes via the WAL snapshot, so a resubscribing client can resume
	// its last Seq and detect every undelivered delta).
	Seq, Dropped uint64
}

// Client is a connection to a streaming CSM server. Request methods
// (Register, Send, Flush, ...) are safe for concurrent use; deltas for
// subscribed queries arrive on Deltas.
type Client struct {
	c        net.Conn
	maxFrame int

	wmu    sync.Mutex
	bw     *bufio.Writer // guarded by wmu — one in-flight request writer
	nextID uint64        // guarded by wmu

	mu      sync.Mutex
	pending map[uint64]chan *Frame // guarded by mu — request id → reply slot
	err     error                  // guarded by mu — first terminal read error

	deltas  chan Delta
	dropped atomic.Uint64 // deltas discarded on a full Deltas buffer
	quit    chan struct{} // closed by Close: unblocks waiters
	done    chan struct{} // closed by readLoop on exit
	once    sync.Once
}

// DialConfig tunes a client connection.
type DialConfig struct {
	// MaxFrame bounds one inbound frame (DefaultMaxFrame when 0).
	MaxFrame int
	// DeltaBuffer is the capacity of the Deltas channel (default 1024).
	// A subscriber that stops draining it loses deltas client-side
	// (drop-and-count, see Client.Dropped) rather than stalling the read
	// loop — the read loop also demultiplexes replies, so blocking it on
	// a full buffer would wedge every pending request.
	DeltaBuffer int
}

// Dial connects to a streaming CSM server at addr.
func Dial(addr string, cfg ...DialConfig) (*Client, error) {
	var dc DialConfig
	if len(cfg) > 0 {
		dc = cfg[0]
	}
	if dc.MaxFrame <= 0 {
		dc.MaxFrame = DefaultMaxFrame
	}
	if dc.DeltaBuffer <= 0 {
		dc.DeltaBuffer = 1024
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	cl := &Client{
		c:        c,
		maxFrame: dc.MaxFrame,
		bw:       bufio.NewWriter(c),
		pending:  make(map[uint64]chan *Frame),
		deltas:   make(chan Delta, dc.DeltaBuffer),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go cl.readLoop()
	return cl, nil
}

// readLoop demultiplexes inbound frames: replies resolve their pending
// request, deltas stream to the Deltas channel. It exits — closing
// Deltas and failing all pending requests — on the first read error.
func (c *Client) readLoop() {
	defer close(c.done)
	defer close(c.deltas)
	br := bufio.NewReader(c.c)
	for {
		f, err := ReadFrame(br, c.maxFrame)
		if err != nil {
			c.fail(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		switch f.Type {
		case TypeDelta:
			upds, err := DecodeUpdates([]string{f.Update})
			if err != nil {
				c.fail(fmt.Errorf("client: bad delta update %q: %w", f.Update, err))
				return
			}
			d := Delta{
				Query:   f.Query,
				Update:  upds[0],
				Pos:     f.Pos,
				Neg:     f.Neg,
				Seq:     f.Seq,
				Dropped: f.Dropped,
			}
			select { // drop-counted by dropped
			case c.deltas <- d:
			default:
				// Drop-and-count, never block: this loop also resolves
				// pending replies, so parking on a full Deltas buffer
				// would wedge every outstanding request (Flush would
				// deadlock against the very deltas it waits on).
				c.dropped.Add(1)
			}
		default:
			c.mu.Lock()
			ch := c.pending[f.ID]
			delete(c.pending, f.ID)
			c.mu.Unlock()
			if ch != nil {
				ch <- f // cap-1 buffered: never blocks
			}
		}
	}
}

// fail records the first terminal error and releases every pending
// request by closing its reply slot.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pend := c.pending
	c.pending = make(map[uint64]chan *Frame)
	c.mu.Unlock()
	//lint:ignore lockescape pend was swapped out of c.pending under the lock; this loop holds the sole reference
	for _, ch := range pend {
		close(ch)
	}
}

func (c *Client) readErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return errors.New("client: connection lost")
}

// rpc sends one request frame and waits for its reply. An error-typed
// reply is returned as (reply, error) so callers can inspect partial
// results (e.g. the accepted count of a rejected batch).
func (c *Client) rpc(f *Frame) (*Frame, error) {
	ch := make(chan *Frame, 1)
	c.wmu.Lock()
	c.nextID++
	id := c.nextID
	f.ID = id
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		c.wmu.Unlock()
		return nil, err
	}
	c.pending[id] = ch
	c.mu.Unlock()
	err := WriteFrame(c.bw, f)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("client: write: %w", err)
	}
	select {
	case r, ok := <-ch:
		if !ok {
			return nil, c.readErr()
		}
		if r.Type == TypeError {
			return r, fmt.Errorf("server: %s", r.Err)
		}
		return r, nil
	case <-c.quit:
		return nil, errors.New("client: closed")
	}
}

// Register registers q under name with the given algorithm (see
// internal/algo for names). The query is owned by this connection and is
// deregistered automatically when the connection closes.
func (c *Client) Register(name, algorithm string, q *query.Graph) error {
	labels, edges := QueryPayload(q)
	_, err := c.rpc(&Frame{Type: TypeRegister, Query: name, Algo: algorithm, Labels: labels, Edges: edges})
	return err
}

// Deregister drops a query this connection registered.
func (c *Client) Deregister(name string) error {
	_, err := c.rpc(&Frame{Type: TypeDeregister, Query: name})
	return err
}

// Subscribe starts match-delta notifications for name on this
// connection; they arrive on Deltas.
func (c *Client) Subscribe(name string) error {
	_, err := c.rpc(&Frame{Type: TypeSubscribe, Query: name})
	return err
}

// Send pushes a batch of updates into the server's ingestion queue,
// returning how many were admitted. Under the server's reject
// backpressure policy accepted may be short of len(s), with a non-nil
// "busy" error describing the refusal.
func (c *Client) Send(s stream.Stream) (accepted int, err error) {
	r, err := c.rpc(&Frame{Type: TypeBatch, Updates: EncodeUpdates(s)})
	if r != nil {
		accepted = r.Accepted
	}
	return accepted, err
}

// SendText pushes raw stream-codec text (as produced by stream.Write /
// gendata) without client-side parsing; blank lines and comments are
// stripped here, per-line validation happens on the server.
func (c *Client) SendText(text string) (accepted int, err error) {
	var lines []string
	for _, ln := range strings.Split(text, "\n") {
		ln = strings.TrimSpace(ln)
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		lines = append(lines, ln)
	}
	r, err := c.rpc(&Frame{Type: TypeBatch, Updates: lines})
	if r != nil {
		accepted = r.Accepted
	}
	return accepted, err
}

// Flush blocks until every update this client enqueued before the call
// has been processed and its deltas delivered to this connection's
// queue. Because replies and deltas share one FIFO per connection, all
// deltas for those updates are in the Deltas buffer when Flush returns
// — or counted as dropped, server-side on Delta.Dropped, client-side
// on Dropped.
func (c *Client) Flush() error {
	_, err := c.rpc(&Frame{Type: TypeFlush})
	return err
}

// Deltas returns the match-delta stream for this connection's
// subscriptions. The channel is closed when the connection dies or the
// client is closed. Consumers must drain it promptly; see
// DialConfig.DeltaBuffer.
func (c *Client) Deltas() <-chan Delta { return c.deltas }

// Dropped reports the number of deltas discarded client-side because
// the Deltas buffer was full when they arrived. Server-side queue
// overflow is reported separately, on each delivered Delta's Dropped
// field.
func (c *Client) Dropped() uint64 { return c.dropped.Load() }

// Close tears the connection down and joins the read loop. Queries
// registered by this connection are deregistered server-side.
func (c *Client) Close() error {
	c.once.Do(func() {
		close(c.quit)
		c.c.Close()
	})
	<-c.done
	return nil
}
