package server

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"paracosm/internal/core"
	"paracosm/internal/obs"
)

// TestServeStageCountsMatchIngested is the serving-layer half of the
// stage reconciliation invariant: after a register / subscribe / stream
// / flush round-trip, every per-update stage histogram holds exactly
// Metrics().Ingested samples, the fanout stage holds one sample per
// nonzero delta, and the sampled subscriber-tail stages (queue dwell,
// wire write) saw every delivered delta frame.
func TestServeStageCountsMatchIngested(t *testing.T) {
	g := uniformGraph(120)
	q := singleEdgeQuery(t)
	tr := obs.NewTracer(1 << 12)
	srv := startTestServer(t, g, Config{
		SubscriberQueue: 1 << 14,
		Tracer:          tr,
		Engine:          []core.Option{core.Threads(2)},
	})

	cl, err := Dial(srv.Addr(), DialConfig{DeltaBuffer: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("stages", "GraphFlow", q); err != nil {
		t.Fatal(err)
	}
	if err := cl.Subscribe("stages"); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(13))
	updates := insertOnlyStream(rng, g, 500, 1)
	if n, err := cl.Send(updates); err != nil || n != len(updates) {
		t.Fatalf("send: %d, %v", n, err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}

	// The flush barrier guarantees every delta frame for the accepted
	// updates was WRITTEN before the flush reply (same FIFO), so the
	// subscriber-tail stage observations have all happened; the frames are
	// already buffered client-side.
	frames := 0
drain:
	for {
		select {
		case d := <-cl.Deltas():
			if d.Dropped != 0 {
				t.Fatalf("deltas dropped: %d", d.Dropped)
			}
			frames++
		default:
			break drain
		}
	}

	m := srv.Metrics()
	if m.Ingested != uint64(len(updates)) {
		t.Fatalf("ingested %d, want %d", m.Ingested, len(updates))
	}
	st := tr.Stages()
	for _, stg := range obs.UpdateStages {
		if got := st.Hist(stg).Count(); got != m.Ingested {
			t.Errorf("stage %v count = %d, want ingested %d", stg, got, m.Ingested)
		}
	}
	// Every queued update waited measurably: the wait stages must carry
	// real time on the serve path (they are only ~0 in direct bench mode).
	if st.Hist(obs.StageIngestWait).Count() != 0 && st.Hist(obs.StageIngestWait).Max() == 0 {
		t.Error("ingest-wait stage recorded no time on the queued serve path")
	}
	if got := st.Hist(obs.StageFanout).Count(); got != m.Deltas {
		t.Errorf("fanout count = %d, want deltas %d", got, m.Deltas)
	}
	for _, stg := range []obs.Stage{obs.StageSubQueue, obs.StageWire} {
		if got := st.Hist(stg).Count(); got != uint64(frames) {
			t.Errorf("stage %v count = %d, want delivered frames %d", stg, got, frames)
		}
	}
	// Server lifecycle counters reconcile with the metrics snapshot.
	if got := tr.ServerCount(obs.SrvIngest); got != m.Ingested {
		t.Errorf("srv:ingest count = %d, want %d", got, m.Ingested)
	}
	if got := tr.ServerCount(obs.SrvRegister); got != 1 {
		t.Errorf("srv:register count = %d, want 1", got)
	}
}

// queriesJSON hits the /queries handler with the given query string and
// decodes the rows (2xx expected).
func queriesJSON(t *testing.T, srv *Server, rawQuery string) []QueryRow {
	t.Helper()
	req := httptest.NewRequest("GET", "/queries?"+rawQuery, nil)
	rec := httptest.NewRecorder()
	srv.QueriesHandler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /queries?%s: %d %s", rawQuery, rec.Code, rec.Body.String())
	}
	var rows []QueryRow
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatalf("decode /queries?%s: %v\n%s", rawQuery, err, rec.Body.String())
	}
	return rows
}

// TestQueriesEndpoint covers the /queries debug endpoint: every live
// query appears with its processed-update count, sort keys and ?n=
// truncation work, unknown keys are a 400.
func TestQueriesEndpoint(t *testing.T) {
	g := uniformGraph(100)
	q := singleEdgeQuery(t)
	srv := startTestServer(t, g, Config{Engine: []core.Option{core.Threads(1)}})

	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, name := range []string{"beta", "alpha"} {
		if err := cl.Register(name, "GraphFlow", q); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(19))
	updates := insertOnlyStream(rng, g, 40, 1)
	if _, err := cl.Send(updates); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}

	// Default sort (updates desc, name asc tiebreak): both queries saw
	// every update, so the tiebreak decides.
	rows := queriesJSON(t, srv, "")
	if len(rows) != 2 || rows[0].Name != "alpha" || rows[1].Name != "beta" {
		t.Fatalf("default rows = %+v, want alpha,beta", rows)
	}
	for _, r := range rows {
		if r.Updates != len(updates) {
			t.Errorf("query %q updates = %d, want %d", r.Name, r.Updates, len(updates))
		}
		if r.Matches == 0 {
			t.Errorf("query %q reports no matches over an all-matching stream", r.Name)
		}
		if r.MaxMicros < r.P99Micros || r.P99Micros < r.P50Micros {
			t.Errorf("query %q quantiles not monotone: %+v", r.Name, r)
		}
	}
	if rows := queriesJSON(t, srv, "by=name"); rows[0].Name != "alpha" {
		t.Errorf("by=name rows = %+v", rows)
	}
	if rows := queriesJSON(t, srv, "by=latency&n=1"); len(rows) != 1 {
		t.Errorf("n=1 returned %d rows", len(rows))
	}

	for _, bad := range []string{"by=bogus", "n=x", "n=-2"} {
		req := httptest.NewRequest("GET", "/queries?"+bad, nil)
		rec := httptest.NewRecorder()
		srv.QueriesHandler().ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("GET /queries?%s: %d, want 400", bad, rec.Code)
		}
	}
}

// TestWriteQueryMetricsEscaping: query names are client-supplied label
// values; quotes, backslashes and newline-hostile characters must reach
// /metrics escaped, one labeled gauge per live query.
func TestWriteQueryMetricsEscaping(t *testing.T) {
	g := uniformGraph(30)
	q := singleEdgeQuery(t)
	srv := startTestServer(t, g, Config{Engine: []core.Option{core.Threads(1)}})

	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register(`ev"il\q`, "GraphFlow", q); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	if _, err := cl.Send(insertOnlyStream(rng, g, 10, 1)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := srv.WriteQueryMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `paracosm_query_updates{name="ev\"il\\q"} 10`) {
		t.Errorf("escaped labeled series missing:\n%s", out)
	}
	for _, series := range []string{
		"paracosm_query_escalation_rate{", "paracosm_query_matches{",
		"paracosm_query_latency_p50_seconds{", "paracosm_query_latency_p99_seconds{",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("missing %s series:\n%s", series, out)
		}
	}
}
