package server

import (
	"context"
	"encoding/json"
	"fmt"

	"paracosm/internal/algo"
	"paracosm/internal/core"
	"paracosm/internal/graph"
	"paracosm/internal/obs"
	"paracosm/internal/stream"
	"paracosm/internal/wal"
)

// This file is the server half of the durability layer (DESIGN.md §16):
// opening the WAL and restoring snapshot state at boot, the asynchronous
// log-tail replay behind the readiness gate, and the periodic/final
// snapshot writer. The wal package owns the on-disk formats; everything
// here is about replaying records through the same engine paths live
// traffic takes, so recovered state is bit-for-bit what an uninterrupted
// run would have produced.

// openWAL opens (or creates) the log in cfg.WALDir, loads the newest
// valid snapshot, initializes the engine from it (or from g when none
// exists — the very first boot), restores the snapshot's standing
// queries, and returns the LSN replay must resume after. Runs before any
// serving goroutine starts, so it needs no locking beyond what the
// callees take.
func (s *Server) openWAL(g *graph.Graph) (replayFrom uint64, err error) {
	snap, err := wal.LoadSnapshot(s.cfg.WALDir)
	if err != nil {
		return 0, fmt.Errorf("server: %w", err)
	}
	log, err := wal.Open(s.cfg.WALDir, wal.Options{Policy: s.cfg.Fsync, Interval: s.cfg.FsyncInterval})
	if err != nil {
		return 0, fmt.Errorf("server: %w", err)
	}
	s.wal = log
	s.mu.Lock()
	s.regs = make(map[string]wal.RegPayload)
	s.mu.Unlock()
	// persistFn is the ingestion loop's durability hook, built once: a
	// method value created per batch would allocate on the hot path (see
	// TestSharedPathAllocations).
	s.persistFn = func(batch stream.Stream) error {
		var clk obs.StageClock
		if s.tracer != nil {
			clk.Start()
		}
		_, err := s.wal.AppendUpdates(batch)
		if s.tracer != nil {
			clk.Mark(s.tracer.Stages(), obs.StageWALAppend)
		}
		return err
	}
	base := g
	if snap != nil {
		base = snap.Graph
		replayFrom = snap.LSN
	}
	if err := s.multi.Init(base); err != nil {
		s.wal.Close()
		return 0, err
	}
	if snap != nil {
		for _, q := range snap.Queries {
			if err := s.restoreQuery(q); err != nil {
				s.wal.Close()
				return 0, fmt.Errorf("server: restore query %q: %w", q.Name, err)
			}
		}
	} else if log.LastLSN() == 0 {
		// Fresh directory: snapshot the initial graph now, so the base
		// state recovery builds on is on disk and the caller's -graph file
		// is never needed again. (Skipped when the log already has records
		// with no snapshot — a snapshot here would wrongly claim coverage
		// of records not yet replayed.)
		s.snapshot()
	}
	return replayFrom, nil
}

// restoreQuery rebuilds one standing query from its snapshot row: the
// registration (index build over the restored graph), the stats baseline
// and the produced-delta Seq watermark. Boot-time only.
func (s *Server) restoreQuery(q wal.QueryState) error {
	entry, err := algo.ByName(q.Algo)
	if err != nil {
		return err
	}
	qg, err := BuildQuery(q.Labels, q.Edges)
	if err != nil {
		return err
	}
	if err := s.multi.RegisterLive(q.Name, entry.New(), qg); err != nil {
		return err
	}
	if eng := s.multi.Engine(q.Name); eng != nil {
		eng.SeedStats(core.Stats{
			Updates:       q.Updates,
			SafeUpdates:   q.Safe,
			UnsafeUpdates: q.Unsafe,
			Escalations:   q.Escalations,
			Positive:      q.Positive,
			Negative:      q.Negative,
			Nodes:         q.Nodes,
		})
	}
	s.mu.Lock()
	s.regs[q.Name] = q.RegPayload
	s.produced[q.Name] = q.Produced
	s.mu.Unlock()
	return nil
}

// recoverLoop replays the log tail, publishes the outcome and opens the
// readiness gate. On failure the server shuts itself down: a server that
// could not recover must not serve (and must not snapshot) from a graph
// that disagrees with its log.
func (s *Server) recoverLoop(replayFrom uint64) {
	defer s.wg.Done()
	err := s.replay(replayFrom)
	s.mu.Lock()
	s.readyErr = err
	s.mu.Unlock()
	close(s.ready)
	if err != nil {
		s.cancel()
	}
}

// replay drives every log record with LSN > after through the live
// serving paths: updates are batched (up to BatchMax, like the ingestion
// loop) into ProcessBatch calls — whose fan-out re-advances the
// produced-Seq watermarks and whose engines re-accumulate the stats the
// newest snapshot had not yet captured — and registration records flush
// the pending batch first, preserving log order. Records are NOT
// re-appended: they are already durable.
func (s *Server) replay(after uint64) error {
	batch := make(stream.Stream, 0, s.cfg.BatchMax)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if s.cfg.recoverGate != nil {
			select {
			case <-s.cfg.recoverGate:
			case <-s.ctx.Done():
				return s.ctx.Err()
			}
		}
		applied, err := s.multi.ProcessBatchTimed(context.Background(), batch, nil)
		if err != nil {
			return err
		}
		if applied != len(batch) {
			// Every logged update was validated against the graph state it
			// was logged at; a rejection means the snapshot and the log
			// disagree about that state.
			return fmt.Errorf("server: replay applied %d of %d logged updates", applied, len(batch))
		}
		s.ingested.Add(uint64(applied))
		batch = batch[:0]
		return nil
	}
	err := s.wal.Replay(after, func(r wal.Record) error {
		select {
		case <-s.ctx.Done():
			return s.ctx.Err()
		default:
		}
		switch r.Kind {
		case wal.KindUpdate:
			u, err := stream.ParseUpdate(string(r.Payload))
			if err != nil {
				return fmt.Errorf("server: replay lsn %d: %w", r.LSN, err)
			}
			batch = append(batch, u)
			s.walReplayed.Add(1)
			if len(batch) >= s.cfg.BatchMax {
				return flush()
			}
		case wal.KindRegister:
			if err := flush(); err != nil {
				return err
			}
			var reg wal.RegPayload
			if err := json.Unmarshal(r.Payload, &reg); err != nil {
				return fmt.Errorf("server: replay lsn %d: %w", r.LSN, err)
			}
			if err := s.restoreQuery(wal.QueryState{RegPayload: reg}); err != nil {
				// A registration that cannot be rebuilt (e.g. its name
				// collided with a snapshot-restored query after an unclean
				// sequence) is skipped, not fatal: updates do not depend on
				// it and losing one query beats losing the whole store.
				s.walReplaySkip.Add(1)
				return nil
			}
			s.walReplayed.Add(1)
		case wal.KindDeregister:
			if err := flush(); err != nil {
				return err
			}
			var name string
			if err := json.Unmarshal(r.Payload, &name); err != nil {
				return fmt.Errorf("server: replay lsn %d: %w", r.LSN, err)
			}
			if !s.multi.Deregister(name) {
				s.walReplaySkip.Add(1)
				return nil
			}
			s.mu.Lock()
			delete(s.produced, name)
			delete(s.regs, name)
			s.mu.Unlock()
			s.walReplayed.Add(1)
		}
		return nil
	})
	if err != nil {
		return err
	}
	return flush()
}

// snapshot writes one durability snapshot: rotate the log so the sealed
// segments hold exactly the covered records, capture the consistent cut
// under the engine lock (ExportState — no batch or registration can
// interleave), write the state file atomically, then garbage-collect
// segments and older snapshots the new one obsoletes. Runs only where
// engine mutation is quiescent or excluded: the ingestion loop, boot,
// and post-join Close.
func (s *Server) snapshot() {
	var clk obs.StageClock
	if s.tracer != nil {
		clk.Start()
	}
	var lsn uint64
	err := s.multi.ExportState(func(g *graph.Graph, queries []core.QueryExport) error {
		if err := s.wal.Rotate(); err != nil {
			return err
		}
		lsn = s.wal.LastLSN()
		s.mu.Lock()
		states := make([]wal.QueryState, 0, len(queries))
		for _, q := range queries {
			reg, ok := s.regs[q.Name]
			if !ok {
				// Registered outside WAL mode's bookkeeping — impossible by
				// construction, but a snapshot missing one query's row beats
				// failing the snapshot.
				continue
			}
			states = append(states, wal.QueryState{
				RegPayload:  reg,
				Produced:    s.produced[q.Name],
				Updates:     q.Stats.Updates,
				Safe:        q.Stats.SafeUpdates,
				Unsafe:      q.Stats.UnsafeUpdates,
				Escalations: q.Stats.Escalations,
				Positive:    q.Stats.Positive,
				Negative:    q.Stats.Negative,
				Nodes:       q.Stats.Nodes,
			})
		}
		s.mu.Unlock()
		_, werr := wal.WriteSnapshot(s.cfg.WALDir, lsn, g, states)
		return werr
	})
	if err != nil {
		s.walSnapErrs.Add(1)
		s.trace(obs.SrvSnapshotErr, 1)
		return
	}
	s.walSnaps.Add(1)
	s.walSnapLSN.Store(lsn)
	s.trace(obs.SrvSnapshot, 1)
	// GC failures are cosmetic (leftover files are skipped or re-collected
	// next time); the snapshot itself is already durable.
	_ = s.wal.RemoveObsolete(lsn)
	_ = wal.RemoveSnapshotsBefore(s.cfg.WALDir, lsn)
	if s.tracer != nil {
		clk.Mark(s.tracer.Stages(), obs.StageSnapshot)
	}
}

// Ready reports whether recovery has completed successfully and the
// server is accepting traffic (always true for a server without a WAL
// once Start returns). It is the /healthz readiness predicate.
func (s *Server) Ready() bool {
	select {
	case <-s.ready:
		return s.Err() == nil
	default:
		return false
	}
}

// Err returns the terminal serving error: a failed recovery replay or a
// failed batch persist (either shuts the server down). nil while healthy.
func (s *Server) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readyErr
}

// setErr records the first terminal serving error.
func (s *Server) setErr(err error) {
	s.mu.Lock()
	if s.readyErr == nil {
		s.readyErr = err
	}
	s.mu.Unlock()
}

// WaitReady blocks until recovery completes (returning its error), the
// server shuts down, or ctx expires.
func (s *Server) WaitReady(ctx context.Context) error {
	select {
	case <-s.ready:
		return s.Err()
	case <-s.ctx.Done():
		if err := s.Err(); err != nil {
			return err
		}
		return fmt.Errorf("server: closed before ready")
	case <-ctx.Done():
		return ctx.Err()
	}
}
