package server

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"paracosm/internal/algo"
	"paracosm/internal/core"
	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/obs"
	"paracosm/internal/stream"
)

// Config controls a streaming CSM server.
type Config struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:7400", ":0").
	Addr string

	// MaxConns limits concurrently served connections; further accepts
	// receive an error frame and are closed. Defaults to 256.
	MaxConns int

	// MaxInflight bounds the ingestion queue (in updates): the
	// backpressure window between client readers and the ingestion
	// loop. Defaults to 4096.
	MaxInflight int

	// Reject selects the backpressure policy when the ingestion queue
	// is full: false (default) blocks the submitting connection's
	// reader until space frees; true rejects the remainder of the
	// request with a "busy" error reply carrying the accepted count.
	Reject bool

	// SubscriberQueue is the per-connection outbound queue capacity.
	// Replies always get through (the connection's own reader blocks
	// until there is room); match deltas overflow with drop-and-count,
	// mirroring the obs.Ring convention, so one slow subscriber never
	// stalls ingestion. Defaults to 256.
	SubscriberQueue int

	// BatchMax caps how many queued updates the ingestion loop folds
	// into one MultiEngine.ProcessBatch call. Batching is opportunistic:
	// an idle stream is flushed immediately, a busy one amortizes the
	// per-batch classifier cost. Defaults to 256.
	BatchMax int

	// ReadTimeout is the per-frame read deadline; connections idle
	// longer are closed (0 = no idle limit).
	ReadTimeout time.Duration

	// WriteTimeout bounds a single outbound frame write, so a stalled
	// client cannot wedge its writer goroutine. Defaults to 10s.
	WriteTimeout time.Duration

	// MaxFrame bounds one wire frame (DefaultMaxFrame when 0).
	MaxFrame int

	// Tracer, if non-nil, receives server lifecycle events
	// (accept/register/ingest/fanout-drop, Class "server") in its trace
	// ring and is attached to every query engine, so /metrics and
	// /trace cover the serving layer end to end.
	Tracer *obs.Tracer

	// Engine configures every per-query engine (threads, batch size,
	// inter-update toggle, ...).
	Engine []core.Option

	// ingestGate, when non-nil, is received from before every
	// ProcessBatch — a test seam that holds the ingestion loop mid-batch
	// so queue backpressure can be exercised deterministically.
	ingestGate chan struct{}
}

func (c *Config) normalize() {
	if c.MaxConns <= 0 {
		c.MaxConns = 256
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4096
	}
	if c.SubscriberQueue <= 0 {
		c.SubscriberQueue = 256
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 256
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
}

// ingestMsg is one element of the ingestion queue: a single update, or a
// flush barrier (done != nil) released once every update queued before it
// has been processed and fanned out. enq is the admission time, stamped
// only when the server has a tracer (it feeds the ingest_wait pipeline
// stage).
type ingestMsg struct {
	upd  stream.Update
	done chan struct{}
	enq  time.Time
}

// pendingBatch is the ingestion loop's accumulation state: the updates
// being folded into the next ProcessBatch call plus their queue
// timestamps (parallel to upds; populated only when tracing). All slices
// are reused across batches, so the steady-state ingest path does not
// allocate.
type pendingBatch struct {
	upds stream.Stream
	bt   core.BatchTimes
}

func (b *pendingBatch) reset() {
	b.upds = b.upds[:0]
	b.bt.Enqueued = b.bt.Enqueued[:0]
	b.bt.Dequeued = b.bt.Dequeued[:0]
	b.bt.Flushed = time.Time{}
}

// Server is a running streaming CSM service: an accept loop, two
// goroutines per connection (frame reader, frame writer) and a single
// ingestion loop that owns all engine mutation, all joined by Close.
type Server struct {
	cfg    Config
	ln     net.Listener
	multi  *core.MultiEngine
	tracer *obs.Tracer

	ctx    context.Context // cancelled by Close: stops intake, starts drain
	cancel context.CancelFunc
	wg     sync.WaitGroup // joins acceptLoop + ingestLoop; Add serialized by Start (both Adds precede serving)
	connWG sync.WaitGroup // joins per-connection readers/writers; Add serialized by mu (Wait only runs once closing bars new Adds)

	ingest chan ingestMsg

	mu      sync.Mutex
	conns   map[*conn]struct{} // guarded by mu
	subs    map[string][]*conn // guarded by mu — query name → subscribers
	dying   map[string]int     // guarded by mu — names mid-Deregister; bars new subscriptions
	closing bool               // guarded by mu

	closeOnce sync.Once
	closeErr  error // written inside closeOnce, read after wg.Wait

	// Monotonic counters + instantaneous gauges behind WriteMetrics.
	connsTotal    atomic.Uint64 // connections accepted
	connsRejected atomic.Uint64 // connections refused at the limit
	ingested      atomic.Uint64 // updates applied through ProcessBatch
	invalid       atomic.Uint64 // updates rejected as unappliable
	rejected      atomic.Uint64 // updates refused by the Reject policy
	deltasTotal   atomic.Uint64 // nonzero match deltas produced
	deltasDropped atomic.Uint64 // deltas lost to subscriber-queue overflow
}

// conn is one served connection. The reader goroutine owns queries and
// all request handling; the writer goroutine drains out; offerDelta is
// called by ingestion-side fan-out.
type conn struct {
	c      net.Conn
	out    chan *Frame   // replies block (reader-side), deltas drop on overflow
	closed chan struct{} // closed exactly once by close(); gates out sends
	once   sync.Once

	outMu   sync.Mutex
	seq     uint64 // guarded by outMu — deltas enqueued to out (per-subscription Seq)
	dropped uint64 // guarded by outMu — deltas dropped on overflow

	// queries holds the query names registered by this connection;
	// accessed only by the connection's reader goroutine (registration,
	// deregistration, teardown all run there).
	queries map[string]struct{}
}

func (cn *conn) close() {
	cn.once.Do(func() {
		close(cn.closed)
		cn.c.Close()
	})
}

// offerDelta enqueues a delta frame without ever blocking: the bounded
// queue either admits it (consuming the next per-subscription sequence
// number) or the delta is dropped and counted. Safe for concurrent use
// by multiple per-query engine goroutines.
func (cn *conn) offerDelta(f *Frame) bool {
	cn.outMu.Lock()
	defer cn.outMu.Unlock()
	select {
	case <-cn.closed:
		return false
	default:
	}
	f.Seq = cn.seq + 1
	f.Dropped = cn.dropped
	select { // drop-counted by dropped
	case cn.out <- f:
		cn.seq++
		return true
	default:
		cn.dropped++
		return false
	}
}

// Start builds a MultiEngine over g, binds cfg.Addr and serves until
// Close. The graph is cloned exactly once into the engine's shared data
// graph — registered queries add index state only, not graph copies —
// and the caller's g is not retained.
func Start(g *graph.Graph, cfg Config) (*Server, error) {
	cfg.normalize()
	// Per-query latency histograms are always on in serving mode: they
	// back /queries and the labeled paracosm_query series, and a few KB
	// per live query is noise next to a connection's buffers.
	engOpts := append(append([]core.Option(nil), cfg.Engine...), core.TrackQueries(true))
	if cfg.Tracer != nil {
		engOpts = append(engOpts, core.WithTracer(cfg.Tracer))
	}
	s := &Server{
		cfg:    cfg,
		multi:  core.NewMulti(engOpts...),
		tracer: cfg.Tracer,
		ingest: make(chan ingestMsg, cfg.MaxInflight),
		conns:  make(map[*conn]struct{}),
		subs:   make(map[string][]*conn),
		dying:  make(map[string]int),
	}
	s.multi.OnDelta = s.fanout
	if err := s.multi.Init(g); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		s.multi.Close()
		return nil, fmt.Errorf("server: listen %s: %w", cfg.Addr, err)
	}
	s.ln = ln
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.wg.Add(2)
	go s.acceptLoop()
	go s.ingestLoop()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// NumQueries returns the number of live registered queries.
func (s *Server) NumQueries() int { return s.multi.NumQueries() }

// Close gracefully shuts the server down: stop accepting, stop intake,
// drain updates already admitted to the ingestion queue through the
// engines (releasing any flush barriers), close every connection, join
// every goroutine, then release the engines. Safe to call more than
// once; every caller blocks until shutdown completes.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closing = true
		conns := make([]*conn, 0, len(s.conns))
		for cn := range s.conns {
			conns = append(conns, cn)
		}
		s.mu.Unlock()
		s.closeErr = s.ln.Close()
		s.cancel()
		for _, cn := range conns {
			cn.close()
		}
	})
	s.wg.Wait()
	s.multi.Close()
	return s.closeErr
}

// trace records one server lifecycle event (no-op without a tracer): a
// per-op counter behind paracosm_server_events_total plus one Class
// "server" ring event. See obs.Tracer.ServerEvent for why these bypass
// the per-update counters.
func (s *Server) trace(op obs.ServerOp, n uint64) {
	if s.tracer == nil {
		return
	}
	s.tracer.ServerEvent(op, n)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed by Close
		}
		s.connsTotal.Add(1)
		s.mu.Lock()
		full := s.closing || len(s.conns) >= s.cfg.MaxConns
		var cn *conn
		if !full {
			cn = &conn{
				c:       c,
				out:     make(chan *Frame, s.cfg.SubscriberQueue),
				closed:  make(chan struct{}),
				queries: make(map[string]struct{}),
			}
			s.conns[cn] = struct{}{}
			// Add under mu, serialized with Close's closing=true: the
			// ingestion loop's post-cancel connWG.Wait can never miss a
			// connection admitted by a racing accept.
			s.connWG.Add(2)
		}
		s.mu.Unlock()
		if full {
			s.connsRejected.Add(1)
			s.trace(obs.SrvReject, 1)
			c.SetWriteDeadline(time.Now().Add(time.Second))
			bw := bufio.NewWriter(c)
			_ = WriteFrame(bw, &Frame{Type: TypeError, Err: "connection limit reached"})
			_ = bw.Flush()
			c.Close()
			continue
		}
		s.trace(obs.SrvAccept, 1)
		go s.readLoop(cn)
		go s.writeLoop(cn)
	}
}

// readLoop parses and serves one connection's requests until the
// connection fails, idles out, or the server closes.
func (s *Server) readLoop(cn *conn) {
	defer s.connWG.Done()
	defer s.teardown(cn)
	br := bufio.NewReader(cn.c)
	for {
		if s.cfg.ReadTimeout > 0 {
			cn.c.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		f, err := ReadFrame(br, s.cfg.MaxFrame)
		if err != nil {
			return
		}
		if !s.handle(cn, f) {
			return
		}
	}
}

// teardown undoes a connection's footprint: subscriptions are removed,
// queries it registered are deregistered (dropping their engines), and
// the writer goroutine is released.
func (s *Server) teardown(cn *conn) {
	cn.close()
	s.mu.Lock()
	delete(s.conns, cn)
	for q, subs := range s.subs {
		s.subs[q] = removeConn(subs, cn)
		if len(s.subs[q]) == 0 {
			delete(s.subs, q)
		}
	}
	s.mu.Unlock()
	for name := range cn.queries {
		// Other connections' subscriptions to this query die with it.
		if s.dropQuery(name) {
			s.trace(obs.SrvDeregister, 1)
		}
	}
	s.trace(obs.SrvDisconnect, 1)
}

// dropQuery removes a query's subscriptions and deregisters its engine
// as one logical step: the name stays marked dying (under mu) for the
// whole window, so a concurrent SUBSCRIBE cannot slip between the subs
// delete and the engine teardown and leave a stale subscription that
// would silently attach to a future re-registration of the same name.
// mu is NOT held across Deregister itself — Deregister waits on any
// in-flight ProcessBatch, whose fanout takes mu, so holding it here
// would deadlock.
func (s *Server) dropQuery(name string) bool {
	s.mu.Lock()
	delete(s.subs, name)
	s.dying[name]++
	s.mu.Unlock()
	ok := s.multi.Deregister(name)
	s.mu.Lock()
	if s.dying[name]--; s.dying[name] == 0 {
		delete(s.dying, name)
	}
	s.mu.Unlock()
	return ok
}

func removeConn(subs []*conn, cn *conn) []*conn {
	out := subs[:0]
	for _, c := range subs {
		if c != cn {
			out = append(out, c)
		}
	}
	return out
}

// reply enqueues a response frame. Replies are never dropped: the send
// blocks (the connection's own command processing stalls, nobody else)
// until the writer drains room, the connection dies, or the server
// shuts down.
func (s *Server) reply(cn *conn, f *Frame) bool {
	select {
	case cn.out <- f:
		return true
	case <-cn.closed:
		return false
	case <-s.ctx.Done():
		return false
	}
}

func (s *Server) replyOK(cn *conn, id uint64, accepted int) bool {
	return s.reply(cn, &Frame{Type: TypeOK, ID: id, Accepted: accepted})
}

func (s *Server) replyErr(cn *conn, id uint64, accepted int, err error) bool {
	return s.reply(cn, &Frame{Type: TypeError, ID: id, Accepted: accepted, Err: err.Error()})
}

// handle serves one request frame; it reports false when the connection
// should be torn down.
func (s *Server) handle(cn *conn, f *Frame) bool {
	switch f.Type {
	case TypeRegister:
		entry, err := algo.ByName(f.Algo)
		if err != nil {
			return s.replyErr(cn, f.ID, 0, err)
		}
		if f.Query == "" {
			return s.replyErr(cn, f.ID, 0, fmt.Errorf("empty query name"))
		}
		q, err := BuildQuery(f.Labels, f.Edges)
		if err != nil {
			return s.replyErr(cn, f.ID, 0, err)
		}
		if err := s.multi.RegisterLive(f.Query, entry.New(), q); err != nil {
			return s.replyErr(cn, f.ID, 0, err)
		}
		cn.queries[f.Query] = struct{}{}
		s.trace(obs.SrvRegister, 1)
		return s.replyOK(cn, f.ID, 0)

	case TypeDeregister:
		if _, owned := cn.queries[f.Query]; !owned {
			return s.replyErr(cn, f.ID, 0, fmt.Errorf("query %q not registered by this connection", f.Query))
		}
		delete(cn.queries, f.Query)
		s.dropQuery(f.Query)
		s.trace(obs.SrvDeregister, 1)
		return s.replyOK(cn, f.ID, 0)

	case TypeSubscribe:
		if s.multi.Engine(f.Query) == nil {
			return s.replyErr(cn, f.ID, 0, fmt.Errorf("unknown query %q", f.Query))
		}
		s.mu.Lock()
		if s.dying[f.Query] > 0 {
			s.mu.Unlock()
			return s.replyErr(cn, f.ID, 0, fmt.Errorf("unknown query %q", f.Query))
		}
		already := false
		for _, c := range s.subs[f.Query] {
			if c == cn {
				already = true
			}
		}
		if !already {
			s.subs[f.Query] = append(s.subs[f.Query], cn)
		}
		s.mu.Unlock()
		if s.multi.Engine(f.Query) == nil {
			// Deregistered between the existence check and the insert (the
			// dying marker only bars the subs-delete→Deregister window):
			// roll back so the subscription cannot outlive its query.
			s.mu.Lock()
			if subs := removeConn(s.subs[f.Query], cn); len(subs) > 0 {
				s.subs[f.Query] = subs
			} else {
				delete(s.subs, f.Query)
			}
			s.mu.Unlock()
			return s.replyErr(cn, f.ID, 0, fmt.Errorf("unknown query %q", f.Query))
		}
		s.trace(obs.SrvSubscribe, 1)
		return s.replyOK(cn, f.ID, 0)

	case TypeUpdate, TypeBatch:
		upds, err := DecodeUpdates(f.Updates)
		if err != nil {
			return s.replyErr(cn, f.ID, 0, err)
		}
		accepted, err := s.enqueue(cn, upds)
		if err != nil {
			return s.replyErr(cn, f.ID, accepted, err)
		}
		return s.replyOK(cn, f.ID, accepted)

	case TypeFlush:
		done := make(chan struct{})
		select {
		case s.ingest <- ingestMsg{done: done}:
		case <-s.ctx.Done():
			return s.replyErr(cn, f.ID, 0, fmt.Errorf("server shutting down"))
		case <-cn.closed:
			return false
		}
		select {
		case <-done:
			return s.replyOK(cn, f.ID, 0)
		case <-s.ctx.Done():
			return s.replyErr(cn, f.ID, 0, fmt.Errorf("server shutting down"))
		case <-cn.closed:
			return false
		}

	default:
		return s.replyErr(cn, f.ID, 0, fmt.Errorf("unknown frame type %q", f.Type))
	}
}

// enqueue admits updates to the ingestion queue one at a time (so
// MaxInflight bounds updates, not frames), honoring the backpressure
// policy: block the submitting reader, or reject the remainder.
func (s *Server) enqueue(cn *conn, upds stream.Stream) (int, error) {
	traced := s.tracer != nil
	for i, upd := range upds {
		m := ingestMsg{upd: upd}
		if traced {
			// One stamp per update feeds the ingest_wait stage; skipped
			// without a tracer so the untraced path stays clock-free.
			m.enq = time.Now()
		}
		if s.cfg.Reject {
			select { // drop-counted by rejected
			case s.ingest <- m:
			default:
				s.rejected.Add(uint64(len(upds) - i))
				return i, fmt.Errorf("busy: ingestion queue full")
			}
			continue
		}
		select {
		case s.ingest <- m:
		case <-s.ctx.Done():
			return i, fmt.Errorf("server shutting down")
		case <-cn.closed:
			return i, fmt.Errorf("connection closing")
		}
	}
	return len(upds), nil
}

// ingestLoop is the single owner of engine mutation: it folds queued
// updates into batches (up to BatchMax) and runs each through
// MultiEngine.ProcessBatch, whose per-engine inter-update classifier
// path applies safe updates directly. On shutdown it drains whatever
// already made it into the queue before exiting (drain-then-close).
func (s *Server) ingestLoop() {
	defer s.wg.Done()
	batch := pendingBatch{upds: make(stream.Stream, 0, s.cfg.BatchMax)}
	for {
		select {
		case m := <-s.ingest:
			s.gather(&batch, m)
			// Opportunistic batching: keep folding while the queue is
			// hot, flush as soon as it runs dry.
		drain:
			for {
				select {
				case m := <-s.ingest:
					s.gather(&batch, m)
				default:
					break drain
				}
			}
			s.flushBatch(&batch)
		case <-s.ctx.Done():
			// A reader's enqueue select can still win the ingest send after
			// cancellation; wait for every connection goroutine to exit so
			// the final drain observes a quiescent queue and no update
			// acknowledged "ok" is silently lost.
			s.connWG.Wait()
			for {
				select {
				case m := <-s.ingest:
					s.gather(&batch, m)
				default:
					s.flushBatch(&batch)
					return
				}
			}
		}
	}
}

// gather folds one queue element into the pending batch, flushing at
// barriers (so the barrier's happens-after covers every prior update)
// and at the batch cap. With a tracer, each update's enqueue and pickup
// times are kept alongside it, feeding the ingest_wait and assemble
// pipeline stages at flush.
func (s *Server) gather(batch *pendingBatch, m ingestMsg) {
	if m.done != nil {
		s.flushBatch(batch)
		close(m.done)
		return
	}
	batch.upds = append(batch.upds, m.upd)
	if s.tracer != nil {
		batch.bt.Enqueued = append(batch.bt.Enqueued, m.enq)
		batch.bt.Dequeued = append(batch.bt.Dequeued, time.Now())
	}
	if len(batch.upds) >= s.cfg.BatchMax {
		s.flushBatch(batch)
	}
}

// flushBatch runs the pending batch through every registered query.
// Updates that fail validation against the base graph are counted
// invalid; engine errors are impossible here (no deadline, updates
// pre-validated). The batch's queue timestamps ride along so the engine
// driver attributes per-update ingest wait and assembly dwell — observed
// there, on the same path that counts the update applied, which is what
// keeps stage sample counts equal to the ingested counter below.
func (s *Server) flushBatch(batch *pendingBatch) {
	if len(batch.upds) == 0 {
		return
	}
	if s.cfg.ingestGate != nil {
		<-s.cfg.ingestGate
	}
	var bt *core.BatchTimes
	if s.tracer != nil {
		batch.bt.Flushed = time.Now()
		bt = &batch.bt
	}
	applied, _ := s.multi.ProcessBatchTimed(context.Background(), batch.upds, bt)
	s.ingested.Add(uint64(applied))
	s.invalid.Add(uint64(len(batch.upds) - applied))
	s.trace(obs.SrvIngest, uint64(applied))
	batch.reset()
}

// fanout is the MultiEngine.OnDelta sink: every nonzero ΔM becomes one
// delta frame per subscriber of that query, enqueued without blocking
// (overflow drops and counts). Invoked concurrently by per-query engine
// goroutines during ProcessBatch.
func (s *Server) fanout(qname string, upd stream.Update, d csm.Delta, timeout bool) {
	if d.Positive == 0 && d.Negative == 0 {
		return
	}
	s.deltasTotal.Add(1)
	var clk obs.StageClock
	traced := s.tracer != nil
	if traced {
		clk.Start()
	}
	// Snapshot the subscriber list under the lock: teardown compacts the
	// backing array in place and subscribe appends into its spare
	// capacity, so iterating the bare slice header unlocked races.
	s.mu.Lock()
	subs := append([]*conn(nil), s.subs[qname]...)
	s.mu.Unlock()
	for _, cn := range subs {
		f := &Frame{
			Type:   TypeDelta,
			Query:  qname,
			Update: upd.String(),
			Pos:    d.Positive,
			Neg:    d.Negative,
		}
		if traced {
			// The writer goroutine measures this frame's queue dwell and
			// wire write from the stamp (stages sub_queue / wire_write).
			f.enq = time.Now()
		}
		if !cn.offerDelta(f) {
			s.deltasDropped.Add(1)
			s.trace(obs.SrvDrop, 1)
		}
	}
	if traced {
		// One fanout observation per nonzero delta (reconciles with the
		// paracosm_server_deltas_total counter incremented above).
		clk.Mark(s.tracer.Stages(), obs.StageFanout)
	}
}

// writeLoop serializes one connection's outbound frames, batching
// flushes while the queue stays hot. Delta frames stamped by fanout get
// their subscriber-queue dwell and wire-write time observed here (the
// sampled tail of the pipeline: only deltas that were actually delivered
// contribute, which is exactly what the stages describe).
func (s *Server) writeLoop(cn *conn) {
	defer s.connWG.Done()
	bw := bufio.NewWriter(cn.c)
	for {
		select {
		case f := <-cn.out:
			var clk obs.StageClock
			staged := s.tracer != nil && !f.enq.IsZero()
			if staged {
				s.tracer.Stages().Observe(obs.StageSubQueue, time.Since(f.enq))
				clk.Start()
			}
			if s.cfg.WriteTimeout > 0 {
				cn.c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			}
			if err := WriteFrame(bw, f); err != nil {
				cn.close()
				return
			}
			if len(cn.out) == 0 {
				if err := bw.Flush(); err != nil {
					cn.close()
					return
				}
			}
			if staged {
				clk.Mark(s.tracer.Stages(), obs.StageWire)
			}
		case <-cn.closed:
			return
		}
	}
}

// MetricsSnapshot is the server's instantaneous /metrics view.
type MetricsSnapshot struct {
	Connections   int
	Queries       int
	Subscriptions int
	QueueDepth    int
	ConnsTotal    uint64
	ConnsRejected uint64
	Ingested      uint64
	Invalid       uint64
	Rejected      uint64
	Deltas        uint64
	DeltasDropped uint64

	// Query-work totals, aggregated over live AND deregistered queries
	// (MultiEngine retains the tally of every closed engine), so these
	// counters are monotonic across client disconnects.
	QueriesClosed  uint64
	QueryUpdates   uint64
	QueryPositive  uint64
	QueryNegative  uint64
	QuerySafe      uint64
	QueryNodesSeen uint64
}

// Metrics returns a snapshot of the serving-layer gauges and counters.
func (s *Server) Metrics() MetricsSnapshot {
	s.mu.Lock()
	conns := len(s.conns)
	subsN := 0
	for _, subs := range s.subs {
		subsN += len(subs)
	}
	s.mu.Unlock()
	total := s.multi.TotalStats()
	_, closedN := s.multi.ClosedStats()
	return MetricsSnapshot{
		Connections:   conns,
		Queries:       s.multi.NumQueries(),
		Subscriptions: subsN,
		QueueDepth:    len(s.ingest),
		ConnsTotal:    s.connsTotal.Load(),
		ConnsRejected: s.connsRejected.Load(),
		Ingested:      s.ingested.Load(),
		Invalid:       s.invalid.Load(),
		Rejected:      s.rejected.Load(),
		Deltas:        s.deltasTotal.Load(),
		DeltasDropped: s.deltasDropped.Load(),

		QueriesClosed:  uint64(closedN),
		QueryUpdates:   uint64(total.Updates),
		QueryPositive:  total.Positive,
		QueryNegative:  total.Negative,
		QuerySafe:      uint64(total.SafeUpdates),
		QueryNodesSeen: total.Nodes,
	}
}

// WriteMetrics emits the serving-layer gauges and counters in Prometheus
// text exposition format; pass it to obs.StartServer as an extra
// MetricsFunc to join the tracer's /metrics payload.
func (s *Server) WriteMetrics(w io.Writer) error {
	m := s.Metrics()
	series := []struct {
		name, typ, help string
		v               uint64
	}{
		{"paracosm_server_connections", "gauge", "Currently served connections.", uint64(m.Connections)},
		{"paracosm_server_queries", "gauge", "Live registered continuous queries.", uint64(m.Queries)},
		{"paracosm_server_subscriptions", "gauge", "Active match-delta subscriptions.", uint64(m.Subscriptions)},
		{"paracosm_server_ingest_queue_depth", "gauge", "Updates waiting in the ingestion queue.", uint64(m.QueueDepth)},
		{"paracosm_server_conns_total", "counter", "Connections accepted since start.", m.ConnsTotal},
		{"paracosm_server_conns_rejected_total", "counter", "Connections refused at the connection limit.", m.ConnsRejected},
		{"paracosm_server_updates_ingested_total", "counter", "Updates applied through the ingestion loop.", m.Ingested},
		{"paracosm_server_updates_invalid_total", "counter", "Updates rejected as unappliable against the current graph.", m.Invalid},
		{"paracosm_server_updates_rejected_total", "counter", "Updates refused by the reject backpressure policy.", m.Rejected},
		{"paracosm_server_deltas_total", "counter", "Nonzero match deltas produced across all queries.", m.Deltas},
		{"paracosm_server_deltas_dropped_total", "counter", "Match deltas dropped on subscriber-queue overflow.", m.DeltasDropped},
		{"paracosm_server_queries_closed_total", "counter", "Queries deregistered since start (their work totals are retained below).", m.QueriesClosed},
		{"paracosm_query_updates_total", "counter", "Updates processed summed over live and deregistered queries.", m.QueryUpdates},
		{"paracosm_query_matches_positive_total", "counter", "Positive match deltas summed over live and deregistered queries.", m.QueryPositive},
		{"paracosm_query_matches_negative_total", "counter", "Negative match deltas summed over live and deregistered queries.", m.QueryNegative},
		{"paracosm_query_safe_updates_total", "counter", "Updates classified safe summed over live and deregistered queries.", m.QuerySafe},
		{"paracosm_query_nodes_total", "counter", "Search-tree nodes visited summed over live and deregistered queries.", m.QueryNodesSeen},
	}
	for _, sr := range series {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			sr.name, sr.help, sr.name, sr.typ, sr.name, sr.v); err != nil {
			return err
		}
	}
	return nil
}
