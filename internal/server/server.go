package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"paracosm/internal/algo"
	"paracosm/internal/core"
	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/obs"
	"paracosm/internal/stream"
	"paracosm/internal/wal"
)

// Config controls a streaming CSM server.
type Config struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:7400", ":0").
	Addr string

	// MaxConns limits concurrently served connections; further accepts
	// receive an error frame and are closed. Defaults to 256.
	MaxConns int

	// MaxInflight bounds the ingestion queue (in updates): the
	// backpressure window between client readers and the ingestion
	// loop. Defaults to 4096.
	MaxInflight int

	// Reject selects the backpressure policy when the ingestion queue
	// is full: false (default) blocks the submitting connection's
	// reader until space frees; true rejects the remainder of the
	// request with a "busy" error reply carrying the accepted count.
	Reject bool

	// SubscriberQueue is the per-connection outbound queue capacity.
	// Replies always get through (the connection's own reader blocks
	// until there is room); match deltas overflow with drop-and-count,
	// mirroring the obs.Ring convention, so one slow subscriber never
	// stalls ingestion. Defaults to 256.
	SubscriberQueue int

	// BatchMax caps how many queued updates the ingestion loop folds
	// into one MultiEngine.ProcessBatch call. Batching is opportunistic:
	// an idle stream is flushed immediately, a busy one amortizes the
	// per-batch classifier cost. Defaults to 256.
	BatchMax int

	// ReadTimeout is the per-frame read deadline; connections idle
	// longer are closed (0 = no idle limit).
	ReadTimeout time.Duration

	// WriteTimeout bounds a single outbound frame write, so a stalled
	// client cannot wedge its writer goroutine. Defaults to 10s.
	WriteTimeout time.Duration

	// MaxFrame bounds one wire frame (DefaultMaxFrame when 0).
	MaxFrame int

	// Tracer, if non-nil, receives server lifecycle events
	// (accept/register/ingest/fanout-drop, Class "server") in its trace
	// ring and is attached to every query engine, so /metrics and
	// /trace cover the serving layer end to end.
	Tracer *obs.Tracer

	// Engine configures every per-query engine (threads, batch size,
	// inter-update toggle, ...).
	Engine []core.Option

	// WALDir, when non-empty, enables the durability layer (internal/wal):
	// accepted updates and registration changes are written ahead to a
	// log in this directory, periodic snapshots capture the full serving
	// state, and Start recovers from the latest snapshot + log tail
	// instead of serving cfg's graph. The directory is created if needed.
	WALDir string

	// SnapshotEvery is the snapshot cadence in applied updates (WAL mode
	// only): after this many updates since the last snapshot, the
	// ingestion loop writes a new one and truncates the log. 0 defaults
	// to 65536; negative disables periodic snapshots (one is still
	// written on graceful Close).
	SnapshotEvery int

	// Fsync selects the WAL durability policy: group-commit fsync on an
	// interval (default), fsync before every acknowledgment, or never
	// (page-cache only — still crash-safe against process death, not
	// power loss). See wal.SyncPolicy.
	Fsync wal.SyncPolicy

	// FsyncInterval is the group-commit window under SyncInterval
	// (default 50ms).
	FsyncInterval time.Duration

	// ingestGate, when non-nil, is received from before every
	// ProcessBatch — a test seam that holds the ingestion loop mid-batch
	// so queue backpressure can be exercised deterministically.
	ingestGate chan struct{}

	// recoverGate, when non-nil, is received from before every replayed
	// batch — a test seam that holds recovery mid-replay so the
	// readiness gate (healthz 503) can be probed deterministically.
	recoverGate chan struct{}

	// noFinalSnapshot skips the graceful-Close snapshot — a test seam
	// that makes Close leave crash-equivalent on-disk state (snapshot +
	// unreplayed log tail) without an actual kill.
	noFinalSnapshot bool
}

func (c *Config) normalize() {
	if c.MaxConns <= 0 {
		c.MaxConns = 256
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4096
	}
	if c.SubscriberQueue <= 0 {
		c.SubscriberQueue = 256
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 256
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 65536
	}
}

// ingestMsg is one element of the ingestion queue: a single update, or a
// flush barrier (done != nil) released once every update queued before it
// has been processed and fanned out. enq is the admission time, stamped
// only when the server has a tracer (it feeds the ingest_wait pipeline
// stage).
type ingestMsg struct {
	upd  stream.Update
	done chan struct{}
	enq  time.Time
}

// pendingBatch is the ingestion loop's accumulation state: the updates
// being folded into the next ProcessBatch call plus their queue
// timestamps (parallel to upds; populated only when tracing). All slices
// are reused across batches, so the steady-state ingest path does not
// allocate.
type pendingBatch struct {
	upds stream.Stream
	bt   core.BatchTimes
}

func (b *pendingBatch) reset() {
	b.upds = b.upds[:0]
	b.bt.Enqueued = b.bt.Enqueued[:0]
	b.bt.Dequeued = b.bt.Dequeued[:0]
	b.bt.Flushed = time.Time{}
}

// Server is a running streaming CSM service: an accept loop, two
// goroutines per connection (frame reader, frame writer) and a single
// ingestion loop that owns all engine mutation, all joined by Close.
type Server struct {
	cfg    Config
	ln     net.Listener
	multi  *core.MultiEngine
	tracer *obs.Tracer

	ctx    context.Context // cancelled by Close: stops intake, starts drain
	cancel context.CancelFunc
	wg     sync.WaitGroup // joins acceptLoop + ingestLoop (+ recoverLoop in WAL mode); Add serialized by Start (all Adds precede serving)
	connWG sync.WaitGroup // joins per-connection readers/writers; Add serialized by mu (Wait only runs once closing bars new Adds)

	ingest chan ingestMsg

	// Durability state (nil/zero without Config.WALDir). All WAL appends
	// happen under the engine lock — through ProcessBatchLogged's and
	// RegisterLiveLogged's persist hooks — so the log's record order
	// equals the apply order by construction, and ExportState (which
	// holds the same lock) always captures a consistent cut.
	wal       *wal.Log
	ready     chan struct{}             // closed once recovery replay completes (immediately without WAL)
	readyErr  error                     // guarded by mu — replay failure, set before ready closes
	regs      map[string]wal.RegPayload // guarded by mu — live queries' registration payloads (snapshot source)
	persistFn func(stream.Stream) error // built once in Start (a per-batch method value would allocate on the hot path)
	finiOnce  sync.Once
	sinceSnap int // ingestion-loop only — applied updates since the last snapshot

	mu      sync.Mutex
	conns   map[*conn]struct{} // guarded by mu
	subs    map[string][]*conn // guarded by mu — query name → subscribers
	dying   map[string]int     // guarded by mu — names mid-Deregister; bars new subscriptions
	closing bool               // guarded by mu

	// produced counts every nonzero delta each query has ever produced,
	// delivered or not — the per-query Seq watermark. Frames carry
	// produced[query] at fan-out time, so a subscriber that misses
	// frames (queue overflow, or a disconnect spanning a restart) sees a
	// Seq gap exactly equal to the undelivered count. Snapshots persist
	// it and replayed deltas re-advance it deterministically, which is
	// what makes the contract hold across crashes.
	produced map[string]uint64 // guarded by mu

	closeOnce sync.Once
	closeErr  error // written inside closeOnce, read after wg.Wait

	// WAL-mode counters behind WriteMetrics (zero without a WAL).
	walReplayed   atomic.Uint64 // log records applied during recovery
	walReplaySkip atomic.Uint64 // log records skipped during recovery (e.g. duplicate registration)
	walSnaps      atomic.Uint64 // snapshots written
	walSnapErrs   atomic.Uint64 // snapshot attempts that failed
	walSnapLSN    atomic.Uint64 // LSN of the newest snapshot

	// Monotonic counters + instantaneous gauges behind WriteMetrics.
	connsTotal    atomic.Uint64 // connections accepted
	connsRejected atomic.Uint64 // connections refused at the limit
	ingested      atomic.Uint64 // updates applied through ProcessBatch
	invalid       atomic.Uint64 // updates rejected as unappliable
	rejected      atomic.Uint64 // updates refused by the Reject policy
	deltasTotal   atomic.Uint64 // nonzero match deltas produced
	deltasDropped atomic.Uint64 // deltas lost to subscriber-queue overflow
}

// conn is one served connection. The reader goroutine owns queries and
// all request handling; the writer goroutine drains out; offerDelta is
// called by ingestion-side fan-out.
type conn struct {
	c      net.Conn
	out    chan *Frame   // replies block (reader-side), deltas drop on overflow
	closed chan struct{} // closed exactly once by close(); gates out sends
	once   sync.Once

	outMu   sync.Mutex
	dropped uint64 // guarded by outMu — deltas dropped on overflow

	// queries holds the query names registered by this connection;
	// accessed only by the connection's reader goroutine (registration,
	// deregistration, teardown all run there).
	queries map[string]struct{}
}

func (cn *conn) close() {
	cn.once.Do(func() {
		close(cn.closed)
		cn.c.Close()
	})
}

// offerDelta enqueues a delta frame without ever blocking: the bounded
// queue either admits it or the delta is dropped and counted. The
// frame's Seq is the query's produced-delta watermark, stamped by
// fanout; a drop therefore surfaces to the subscriber as a Seq gap of
// exactly the dropped count (plus the Dropped counter carried on the
// next delivered frame). Safe for concurrent use by multiple per-query
// engine goroutines.
func (cn *conn) offerDelta(f *Frame) bool {
	cn.outMu.Lock()
	defer cn.outMu.Unlock()
	select {
	case <-cn.closed:
		return false
	default:
	}
	f.Dropped = cn.dropped
	select { // drop-counted by dropped
	case cn.out <- f:
		return true
	default:
		cn.dropped++
		return false
	}
}

// Start builds a MultiEngine over g, binds cfg.Addr and serves until
// Close. The graph is cloned exactly once into the engine's shared data
// graph — registered queries add index state only, not graph copies —
// and the caller's g is not retained.
//
// With Config.WALDir set, Start instead recovers: the newest valid
// snapshot (if any) supplies the base graph and standing queries — g is
// ignored then — and the log tail beyond it is replayed asynchronously
// before the server accepts connections or ingests updates. Start
// returns immediately; use Ready/WaitReady (or the /healthz readiness
// gate) to observe recovery completing or failing.
func Start(g *graph.Graph, cfg Config) (*Server, error) {
	cfg.normalize()
	// Per-query latency histograms are always on in serving mode: they
	// back /queries and the labeled paracosm_query series, and a few KB
	// per live query is noise next to a connection's buffers.
	engOpts := append(append([]core.Option(nil), cfg.Engine...), core.TrackQueries(true))
	if cfg.Tracer != nil {
		engOpts = append(engOpts, core.WithTracer(cfg.Tracer))
	}
	s := &Server{
		cfg:      cfg,
		multi:    core.NewMulti(engOpts...),
		tracer:   cfg.Tracer,
		ingest:   make(chan ingestMsg, cfg.MaxInflight),
		conns:    make(map[*conn]struct{}),
		subs:     make(map[string][]*conn),
		dying:    make(map[string]int),
		produced: make(map[string]uint64),
		ready:    make(chan struct{}),
	}
	s.multi.OnDelta = s.fanout
	replayFrom := uint64(0)
	if cfg.WALDir != "" {
		from, err := s.openWAL(g)
		if err != nil {
			s.multi.Close()
			return nil, err
		}
		replayFrom = from
	} else {
		if err := s.multi.Init(g); err != nil {
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		s.multi.Close()
		if s.wal != nil {
			s.wal.Close()
		}
		return nil, fmt.Errorf("server: listen %s: %w", cfg.Addr, err)
	}
	s.ln = ln
	s.ctx, s.cancel = context.WithCancel(context.Background())
	if s.wal != nil {
		s.wg.Add(3)
		go s.recoverLoop(replayFrom)
	} else {
		close(s.ready)
		s.wg.Add(2)
	}
	go s.acceptLoop()
	go s.ingestLoop()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// NumQueries returns the number of live registered queries.
func (s *Server) NumQueries() int { return s.multi.NumQueries() }

// Close gracefully shuts the server down: stop accepting, stop intake,
// drain updates already admitted to the ingestion queue through the
// engines (releasing any flush barriers), close every connection, join
// every goroutine, then release the engines. Safe to call more than
// once; every caller blocks until shutdown completes.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closing = true
		conns := make([]*conn, 0, len(s.conns))
		for cn := range s.conns {
			conns = append(conns, cn)
		}
		s.mu.Unlock()
		s.closeErr = s.ln.Close()
		s.cancel()
		for _, cn := range conns {
			cn.close()
		}
	})
	s.wg.Wait()
	s.finiOnce.Do(func() {
		if s.wal == nil {
			return
		}
		// All loops are joined: nothing mutates the engine or appends to
		// the log anymore. A graceful shutdown writes a final snapshot so
		// the next boot skips replay entirely; a failed server (replay or
		// persist error) must not — its in-memory state is not a cut the
		// log agrees with.
		if s.Err() == nil && !s.cfg.noFinalSnapshot {
			s.snapshot()
		}
		if err := s.wal.Close(); err != nil && s.closeErr == nil {
			s.closeErr = err
		}
		if err := s.Err(); err != nil && s.closeErr == nil {
			s.closeErr = err
		}
	})
	s.multi.Close()
	return s.closeErr
}

// trace records one server lifecycle event (no-op without a tracer): a
// per-op counter behind paracosm_server_events_total plus one Class
// "server" ring event. See obs.Tracer.ServerEvent for why these bypass
// the per-update counters.
func (s *Server) trace(op obs.ServerOp, n uint64) {
	if s.tracer == nil {
		return
	}
	s.tracer.ServerEvent(op, n)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	// WAL mode: no connection is served until recovery replay completes
	// (arrivals queue in the TCP accept backlog meanwhile). A failed
	// replay never serves — the server is shut down by recoverLoop.
	select {
	case <-s.ready:
		if s.Err() != nil {
			return
		}
	case <-s.ctx.Done():
		return
	}
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed by Close
		}
		s.connsTotal.Add(1)
		s.mu.Lock()
		full := s.closing || len(s.conns) >= s.cfg.MaxConns
		var cn *conn
		if !full {
			cn = &conn{
				c:       c,
				out:     make(chan *Frame, s.cfg.SubscriberQueue),
				closed:  make(chan struct{}),
				queries: make(map[string]struct{}),
			}
			s.conns[cn] = struct{}{}
			// Add under mu, serialized with Close's closing=true: the
			// ingestion loop's post-cancel connWG.Wait can never miss a
			// connection admitted by a racing accept.
			s.connWG.Add(2)
		}
		s.mu.Unlock()
		if full {
			s.connsRejected.Add(1)
			s.trace(obs.SrvReject, 1)
			c.SetWriteDeadline(time.Now().Add(time.Second))
			bw := bufio.NewWriter(c)
			_ = WriteFrame(bw, &Frame{Type: TypeError, Err: "connection limit reached"})
			_ = bw.Flush()
			c.Close()
			continue
		}
		s.trace(obs.SrvAccept, 1)
		go s.readLoop(cn)
		go s.writeLoop(cn)
	}
}

// readLoop parses and serves one connection's requests until the
// connection fails, idles out, or the server closes.
func (s *Server) readLoop(cn *conn) {
	defer s.connWG.Done()
	defer s.teardown(cn)
	br := bufio.NewReader(cn.c)
	for {
		if s.cfg.ReadTimeout > 0 {
			cn.c.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		f, err := ReadFrame(br, s.cfg.MaxFrame)
		if err != nil {
			return
		}
		if !s.handle(cn, f) {
			return
		}
	}
}

// teardown undoes a connection's footprint: subscriptions are removed,
// queries it registered are deregistered (dropping their engines), and
// the writer goroutine is released.
func (s *Server) teardown(cn *conn) {
	cn.close()
	s.mu.Lock()
	delete(s.conns, cn)
	for q, subs := range s.subs {
		s.subs[q] = removeConn(subs, cn)
		if len(s.subs[q]) == 0 {
			delete(s.subs, q)
		}
	}
	s.mu.Unlock()
	if s.wal == nil {
		// Queries die with their registering connection — except in WAL
		// mode, where registrations are durable server state that outlives
		// both the connection and the process (an explicit DEREGISTER
		// removes them).
		for name := range cn.queries {
			// Other connections' subscriptions to this query die with it.
			if s.dropQuery(name) {
				s.trace(obs.SrvDeregister, 1)
			}
		}
	}
	s.trace(obs.SrvDisconnect, 1)
}

// dropQuery removes a query's subscriptions and deregisters its engine
// as one logical step: the name stays marked dying (under mu) for the
// whole window, so a concurrent SUBSCRIBE cannot slip between the subs
// delete and the engine teardown and leave a stale subscription that
// would silently attach to a future re-registration of the same name.
// mu is NOT held across Deregister itself — Deregister waits on any
// in-flight ProcessBatch, whose fanout takes mu, so holding it here
// would deadlock.
func (s *Server) dropQuery(name string) bool {
	s.mu.Lock()
	delete(s.subs, name)
	s.dying[name]++
	s.mu.Unlock()
	var ok bool
	var err error
	if s.wal != nil {
		ok, err = s.multi.DeregisterLogged(name, func() error {
			payload, merr := json.Marshal(name)
			if merr != nil {
				return merr
			}
			_, aerr := s.wal.Append([]wal.Record{{Kind: wal.KindDeregister, Payload: payload}})
			return aerr
		})
	} else {
		ok = s.multi.Deregister(name)
	}
	s.mu.Lock()
	if s.dying[name]--; s.dying[name] == 0 {
		delete(s.dying, name)
	}
	if ok {
		delete(s.produced, name)
		delete(s.regs, name)
	}
	s.mu.Unlock()
	if err != nil {
		return false
	}
	return ok
}

func removeConn(subs []*conn, cn *conn) []*conn {
	out := subs[:0]
	for _, c := range subs {
		if c != cn {
			out = append(out, c)
		}
	}
	return out
}

// reply enqueues a response frame. Replies are never dropped: the send
// blocks (the connection's own command processing stalls, nobody else)
// until the writer drains room, the connection dies, or the server
// shuts down.
func (s *Server) reply(cn *conn, f *Frame) bool {
	select {
	case cn.out <- f:
		return true
	case <-cn.closed:
		return false
	case <-s.ctx.Done():
		return false
	}
}

func (s *Server) replyOK(cn *conn, id uint64, accepted int) bool {
	return s.reply(cn, &Frame{Type: TypeOK, ID: id, Accepted: accepted})
}

func (s *Server) replyErr(cn *conn, id uint64, accepted int, err error) bool {
	return s.reply(cn, &Frame{Type: TypeError, ID: id, Accepted: accepted, Err: err.Error()})
}

// handle serves one request frame; it reports false when the connection
// should be torn down.
func (s *Server) handle(cn *conn, f *Frame) bool {
	switch f.Type {
	case TypeRegister:
		entry, err := algo.ByName(f.Algo)
		if err != nil {
			return s.replyErr(cn, f.ID, 0, err)
		}
		if f.Query == "" {
			return s.replyErr(cn, f.ID, 0, fmt.Errorf("empty query name"))
		}
		q, err := BuildQuery(f.Labels, f.Edges)
		if err != nil {
			return s.replyErr(cn, f.ID, 0, err)
		}
		var persist func() error
		if s.wal != nil {
			reg := wal.RegPayload{Name: f.Query, Algo: f.Algo, Labels: f.Labels, Edges: f.Edges}
			persist = func() error {
				payload, err := json.Marshal(reg)
				if err != nil {
					return err
				}
				_, aerr := s.wal.Append([]wal.Record{{Kind: wal.KindRegister, Payload: payload}})
				return aerr
			}
		}
		if err := s.multi.RegisterLiveLogged(f.Query, entry.New(), q, persist); err != nil {
			return s.replyErr(cn, f.ID, 0, err)
		}
		if s.wal != nil {
			s.mu.Lock()
			s.regs[f.Query] = wal.RegPayload{Name: f.Query, Algo: f.Algo, Labels: f.Labels, Edges: f.Edges}
			s.mu.Unlock()
		}
		cn.queries[f.Query] = struct{}{}
		s.trace(obs.SrvRegister, 1)
		return s.replyOK(cn, f.ID, 0)

	case TypeDeregister:
		if _, owned := cn.queries[f.Query]; !owned && s.wal == nil {
			// WAL mode has no per-connection ownership: queries are durable
			// server state, deregisterable by any client (they may well have
			// been registered before the last restart).
			return s.replyErr(cn, f.ID, 0, fmt.Errorf("query %q not registered by this connection", f.Query))
		}
		delete(cn.queries, f.Query)
		if !s.dropQuery(f.Query) {
			return s.replyErr(cn, f.ID, 0, fmt.Errorf("unknown query %q", f.Query))
		}
		s.trace(obs.SrvDeregister, 1)
		return s.replyOK(cn, f.ID, 0)

	case TypeSubscribe:
		if s.multi.Engine(f.Query) == nil {
			return s.replyErr(cn, f.ID, 0, fmt.Errorf("unknown query %q", f.Query))
		}
		s.mu.Lock()
		if s.dying[f.Query] > 0 {
			s.mu.Unlock()
			return s.replyErr(cn, f.ID, 0, fmt.Errorf("unknown query %q", f.Query))
		}
		already := false
		for _, c := range s.subs[f.Query] {
			if c == cn {
				already = true
			}
		}
		if !already {
			s.subs[f.Query] = append(s.subs[f.Query], cn)
		}
		s.mu.Unlock()
		if s.multi.Engine(f.Query) == nil {
			// Deregistered between the existence check and the insert (the
			// dying marker only bars the subs-delete→Deregister window):
			// roll back so the subscription cannot outlive its query.
			s.mu.Lock()
			if subs := removeConn(s.subs[f.Query], cn); len(subs) > 0 {
				s.subs[f.Query] = subs
			} else {
				delete(s.subs, f.Query)
			}
			s.mu.Unlock()
			return s.replyErr(cn, f.ID, 0, fmt.Errorf("unknown query %q", f.Query))
		}
		s.trace(obs.SrvSubscribe, 1)
		return s.replyOK(cn, f.ID, 0)

	case TypeUpdate, TypeBatch:
		upds, err := DecodeUpdates(f.Updates)
		if err != nil {
			return s.replyErr(cn, f.ID, 0, err)
		}
		accepted, err := s.enqueue(cn, upds)
		if err != nil {
			return s.replyErr(cn, f.ID, accepted, err)
		}
		return s.replyOK(cn, f.ID, accepted)

	case TypeFlush:
		done := make(chan struct{})
		select {
		case s.ingest <- ingestMsg{done: done}:
		case <-s.ctx.Done():
			return s.replyErr(cn, f.ID, 0, fmt.Errorf("server shutting down"))
		case <-cn.closed:
			return false
		}
		select {
		case <-done:
			return s.replyOK(cn, f.ID, 0)
		case <-s.ctx.Done():
			return s.replyErr(cn, f.ID, 0, fmt.Errorf("server shutting down"))
		case <-cn.closed:
			return false
		}

	default:
		return s.replyErr(cn, f.ID, 0, fmt.Errorf("unknown frame type %q", f.Type))
	}
}

// enqueue admits updates to the ingestion queue one at a time (so
// MaxInflight bounds updates, not frames), honoring the backpressure
// policy: block the submitting reader, or reject the remainder.
func (s *Server) enqueue(cn *conn, upds stream.Stream) (int, error) {
	traced := s.tracer != nil
	for i, upd := range upds {
		m := ingestMsg{upd: upd}
		if traced {
			// One stamp per update feeds the ingest_wait stage; skipped
			// without a tracer so the untraced path stays clock-free.
			m.enq = time.Now()
		}
		if s.cfg.Reject {
			select { // drop-counted by rejected
			case s.ingest <- m:
			default:
				s.rejected.Add(uint64(len(upds) - i))
				return i, fmt.Errorf("busy: ingestion queue full")
			}
			continue
		}
		select {
		case s.ingest <- m:
		case <-s.ctx.Done():
			return i, fmt.Errorf("server shutting down")
		case <-cn.closed:
			return i, fmt.Errorf("connection closing")
		}
	}
	return len(upds), nil
}

// ingestLoop is the single owner of engine mutation: it folds queued
// updates into batches (up to BatchMax) and runs each through
// MultiEngine.ProcessBatch, whose per-engine inter-update classifier
// path applies safe updates directly. On shutdown it drains whatever
// already made it into the queue before exiting (drain-then-close).
func (s *Server) ingestLoop() {
	defer s.wg.Done()
	// WAL mode: recovery replay owns the engine until ready closes (no
	// connection exists yet to feed the queue, but the wait makes the
	// ownership handoff explicit and covers test seams).
	select {
	case <-s.ready:
	case <-s.ctx.Done():
		s.connWG.Wait()
		return
	}
	batch := pendingBatch{upds: make(stream.Stream, 0, s.cfg.BatchMax)}
	for {
		select {
		case m := <-s.ingest:
			s.gather(&batch, m)
			// Opportunistic batching: keep folding while the queue is
			// hot, flush as soon as it runs dry.
		drain:
			for {
				select {
				case m := <-s.ingest:
					s.gather(&batch, m)
				default:
					break drain
				}
			}
			s.flushBatch(&batch)
		case <-s.ctx.Done():
			// A reader's enqueue select can still win the ingest send after
			// cancellation; wait for every connection goroutine to exit so
			// the final drain observes a quiescent queue and no update
			// acknowledged "ok" is silently lost.
			s.connWG.Wait()
			for {
				select {
				case m := <-s.ingest:
					s.gather(&batch, m)
				default:
					s.flushBatch(&batch)
					return
				}
			}
		}
	}
}

// gather folds one queue element into the pending batch, flushing at
// barriers (so the barrier's happens-after covers every prior update)
// and at the batch cap. With a tracer, each update's enqueue and pickup
// times are kept alongside it, feeding the ingest_wait and assemble
// pipeline stages at flush.
func (s *Server) gather(batch *pendingBatch, m ingestMsg) {
	if m.done != nil {
		s.flushBatch(batch)
		if s.wal != nil && s.cfg.Fsync == wal.SyncInterval {
			// A flush barrier is the client's durability point: force the
			// group-commit fsync now instead of waiting out the interval.
			_ = s.wal.Sync()
		}
		close(m.done)
		return
	}
	batch.upds = append(batch.upds, m.upd)
	if s.tracer != nil {
		batch.bt.Enqueued = append(batch.bt.Enqueued, m.enq)
		batch.bt.Dequeued = append(batch.bt.Dequeued, time.Now())
	}
	if len(batch.upds) >= s.cfg.BatchMax {
		s.flushBatch(batch)
	}
}

// flushBatch runs the pending batch through every registered query.
// Updates that fail validation against the base graph are counted
// invalid; engine errors are impossible here (no deadline, updates
// pre-validated). The batch's queue timestamps ride along so the engine
// driver attributes per-update ingest wait and assembly dwell — observed
// there, on the same path that counts the update applied, which is what
// keeps stage sample counts equal to the ingested counter below.
func (s *Server) flushBatch(batch *pendingBatch) {
	if len(batch.upds) == 0 {
		return
	}
	if s.cfg.ingestGate != nil {
		<-s.cfg.ingestGate
	}
	var bt *core.BatchTimes
	if s.tracer != nil {
		batch.bt.Flushed = time.Now()
		bt = &batch.bt
	}
	applied, err := s.multi.ProcessBatchLogged(context.Background(), batch.upds, bt, s.persistFn)
	if err != nil && applied == 0 && s.wal != nil {
		// A persist failure rolled the whole batch back (nothing applied,
		// nothing fanned out): the log can no longer honor write-ahead, so
		// stop the server rather than continue accepting updates that
		// would be lost on restart.
		s.trace(obs.SrvIngest, 0)
		s.setErr(err)
		s.cancel()
		batch.reset()
		return
	}
	s.ingested.Add(uint64(applied))
	s.invalid.Add(uint64(len(batch.upds) - applied))
	s.trace(obs.SrvIngest, uint64(applied))
	batch.reset()
	if s.wal != nil && s.cfg.SnapshotEvery > 0 {
		if s.sinceSnap += applied; s.sinceSnap >= s.cfg.SnapshotEvery {
			s.sinceSnap = 0
			s.snapshot()
		}
	}
}

// fanout is the MultiEngine.OnDelta sink: every nonzero ΔM becomes one
// delta frame per subscriber of that query, enqueued without blocking
// (overflow drops and counts). Invoked concurrently by per-query engine
// goroutines during ProcessBatch.
func (s *Server) fanout(qname string, upd stream.Update, d csm.Delta, timeout bool) {
	if d.Positive == 0 && d.Negative == 0 {
		return
	}
	s.deltasTotal.Add(1)
	var clk obs.StageClock
	traced := s.tracer != nil
	if traced {
		clk.Start()
	}
	// Snapshot the subscriber list under the lock: teardown compacts the
	// backing array in place and subscribe appends into its spare
	// capacity, so iterating the bare slice header unlocked races. The
	// query's Seq watermark advances under the same lock — for every
	// nonzero delta, subscribers or not — so it is a deterministic
	// function of the processed stream and survives crash replay intact.
	s.mu.Lock()
	s.produced[qname]++
	seq := s.produced[qname]
	subs := append([]*conn(nil), s.subs[qname]...)
	s.mu.Unlock()
	for _, cn := range subs {
		f := &Frame{
			Type:   TypeDelta,
			Query:  qname,
			Update: upd.String(),
			Pos:    d.Positive,
			Neg:    d.Negative,
			Seq:    seq,
		}
		if traced {
			// The writer goroutine measures this frame's queue dwell and
			// wire write from the stamp (stages sub_queue / wire_write).
			f.enq = time.Now()
		}
		if !cn.offerDelta(f) {
			s.deltasDropped.Add(1)
			s.trace(obs.SrvDrop, 1)
		}
	}
	if traced {
		// One fanout observation per nonzero delta (reconciles with the
		// paracosm_server_deltas_total counter incremented above).
		clk.Mark(s.tracer.Stages(), obs.StageFanout)
	}
}

// writeLoop serializes one connection's outbound frames, batching
// flushes while the queue stays hot. Delta frames stamped by fanout get
// their subscriber-queue dwell and wire-write time observed here (the
// sampled tail of the pipeline: only deltas that were actually delivered
// contribute, which is exactly what the stages describe).
func (s *Server) writeLoop(cn *conn) {
	defer s.connWG.Done()
	bw := bufio.NewWriter(cn.c)
	for {
		select {
		case f := <-cn.out:
			var clk obs.StageClock
			staged := s.tracer != nil && !f.enq.IsZero()
			if staged {
				s.tracer.Stages().Observe(obs.StageSubQueue, time.Since(f.enq))
				clk.Start()
			}
			if s.cfg.WriteTimeout > 0 {
				cn.c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			}
			if err := WriteFrame(bw, f); err != nil {
				cn.close()
				return
			}
			if len(cn.out) == 0 {
				if err := bw.Flush(); err != nil {
					cn.close()
					return
				}
			}
			if staged {
				clk.Mark(s.tracer.Stages(), obs.StageWire)
			}
		case <-cn.closed:
			return
		}
	}
}

// MetricsSnapshot is the server's instantaneous /metrics view.
type MetricsSnapshot struct {
	Connections   int
	Queries       int
	Subscriptions int
	QueueDepth    int
	ConnsTotal    uint64
	ConnsRejected uint64
	Ingested      uint64
	Invalid       uint64
	Rejected      uint64
	Deltas        uint64
	DeltasDropped uint64

	// Query-work totals, aggregated over live AND deregistered queries
	// (MultiEngine retains the tally of every closed engine), so these
	// counters are monotonic across client disconnects.
	QueriesClosed  uint64
	QueryUpdates   uint64
	QueryPositive  uint64
	QueryNegative  uint64
	QuerySafe      uint64
	QueryNodesSeen uint64
}

// Metrics returns a snapshot of the serving-layer gauges and counters.
func (s *Server) Metrics() MetricsSnapshot {
	s.mu.Lock()
	conns := len(s.conns)
	subsN := 0
	for _, subs := range s.subs {
		subsN += len(subs)
	}
	s.mu.Unlock()
	total := s.multi.TotalStats()
	_, closedN := s.multi.ClosedStats()
	return MetricsSnapshot{
		Connections:   conns,
		Queries:       s.multi.NumQueries(),
		Subscriptions: subsN,
		QueueDepth:    len(s.ingest),
		ConnsTotal:    s.connsTotal.Load(),
		ConnsRejected: s.connsRejected.Load(),
		Ingested:      s.ingested.Load(),
		Invalid:       s.invalid.Load(),
		Rejected:      s.rejected.Load(),
		Deltas:        s.deltasTotal.Load(),
		DeltasDropped: s.deltasDropped.Load(),

		QueriesClosed:  uint64(closedN),
		QueryUpdates:   uint64(total.Updates),
		QueryPositive:  total.Positive,
		QueryNegative:  total.Negative,
		QuerySafe:      uint64(total.SafeUpdates),
		QueryNodesSeen: total.Nodes,
	}
}

// WriteMetrics emits the serving-layer gauges and counters in Prometheus
// text exposition format; pass it to obs.StartServer as an extra
// MetricsFunc to join the tracer's /metrics payload.
func (s *Server) WriteMetrics(w io.Writer) error {
	m := s.Metrics()
	series := []struct {
		name, typ, help string
		v               uint64
	}{
		{"paracosm_server_connections", "gauge", "Currently served connections.", uint64(m.Connections)},
		{"paracosm_server_queries", "gauge", "Live registered continuous queries.", uint64(m.Queries)},
		{"paracosm_server_subscriptions", "gauge", "Active match-delta subscriptions.", uint64(m.Subscriptions)},
		{"paracosm_server_ingest_queue_depth", "gauge", "Updates waiting in the ingestion queue.", uint64(m.QueueDepth)},
		{"paracosm_server_conns_total", "counter", "Connections accepted since start.", m.ConnsTotal},
		{"paracosm_server_conns_rejected_total", "counter", "Connections refused at the connection limit.", m.ConnsRejected},
		{"paracosm_server_updates_ingested_total", "counter", "Updates applied through the ingestion loop.", m.Ingested},
		{"paracosm_server_updates_invalid_total", "counter", "Updates rejected as unappliable against the current graph.", m.Invalid},
		{"paracosm_server_updates_rejected_total", "counter", "Updates refused by the reject backpressure policy.", m.Rejected},
		{"paracosm_server_deltas_total", "counter", "Nonzero match deltas produced across all queries.", m.Deltas},
		{"paracosm_server_deltas_dropped_total", "counter", "Match deltas dropped on subscriber-queue overflow.", m.DeltasDropped},
		{"paracosm_server_queries_closed_total", "counter", "Queries deregistered since start (their work totals are retained below).", m.QueriesClosed},
		{"paracosm_query_updates_total", "counter", "Updates processed summed over live and deregistered queries.", m.QueryUpdates},
		{"paracosm_query_matches_positive_total", "counter", "Positive match deltas summed over live and deregistered queries.", m.QueryPositive},
		{"paracosm_query_matches_negative_total", "counter", "Negative match deltas summed over live and deregistered queries.", m.QueryNegative},
		{"paracosm_query_safe_updates_total", "counter", "Updates classified safe summed over live and deregistered queries.", m.QuerySafe},
		{"paracosm_query_nodes_total", "counter", "Search-tree nodes visited summed over live and deregistered queries.", m.QueryNodesSeen},
	}
	for _, sr := range series {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			sr.name, sr.help, sr.name, sr.typ, sr.name, sr.v); err != nil {
			return err
		}
	}
	if s.wal != nil {
		wm := s.wal.Metrics()
		walSeries := []struct {
			name, typ, help string
			v               uint64
		}{
			{"paracosm_wal_records_total", "counter", "Records appended to the write-ahead log since start.", wm.Records},
			{"paracosm_wal_bytes_total", "counter", "Encoded bytes appended to the write-ahead log since start.", wm.Bytes},
			{"paracosm_wal_flushes_total", "counter", "Group-commit write(2) calls by the WAL flusher.", wm.Flushes},
			{"paracosm_wal_fsyncs_total", "counter", "fsync calls issued by the WAL.", wm.Fsyncs},
			{"paracosm_wal_last_lsn", "gauge", "Highest assigned log sequence number.", wm.LastLSN},
			{"paracosm_wal_segments", "gauge", "Live WAL segment files.", uint64(wm.Segments)},
			{"paracosm_wal_replayed_records_total", "counter", "Log records applied during recovery replay.", s.walReplayed.Load()},
			{"paracosm_wal_replay_skipped_total", "counter", "Log records skipped during recovery replay.", s.walReplaySkip.Load()},
			{"paracosm_wal_snapshots_total", "counter", "Durability snapshots written since start.", s.walSnaps.Load()},
			{"paracosm_wal_snapshot_errors_total", "counter", "Snapshot attempts that failed.", s.walSnapErrs.Load()},
			{"paracosm_wal_snapshot_last_lsn", "gauge", "LSN of the newest snapshot written this run.", s.walSnapLSN.Load()},
		}
		for _, sr := range walSeries {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
				sr.name, sr.help, sr.name, sr.typ, sr.name, sr.v); err != nil {
				return err
			}
		}
	}
	return nil
}
