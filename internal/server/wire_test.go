package server

import (
	"bufio"
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"paracosm/internal/algo/algotest"
	"paracosm/internal/graph"
	"paracosm/internal/query"
)

func TestWireRoundTrip(t *testing.T) {
	frames := []*Frame{
		{Type: TypeRegister, ID: 1, Query: "q1", Algo: "GraphFlow",
			Labels: []uint32{0, 1, 0}, Edges: [][3]uint32{{0, 1, 2}, {1, 2, 0}}},
		{Type: TypeBatch, ID: 2, Updates: []string{"+e 0 1 0", "-e 3 4", "+v 2", "-v 7"}},
		{Type: TypeDelta, Query: "q1", Update: "+e 0 1 0", Pos: 3, Neg: 1, Seq: 42, Dropped: 2},
		{Type: TypeOK, ID: 9, Accepted: 128},
		{Type: TypeError, ID: 10, Err: "unknown query"},
		{Type: TypeFlush, ID: 11},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&buf)
	for i, want := range frames {
		got, err := ReadFrame(br, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d: %+v != %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(br, 0); err != io.EOF {
		t.Fatalf("at clean boundary: %v, want io.EOF", err)
	}
}

func TestReadFrameHostileInput(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"huge length prefix", "999999999999 {}\n"},
		{"over limit", "2000000 {}\n"},
		{"negative-ish prefix", "-5 {}\n"},
		{"letters in prefix", "12a {}\n"},
		{"no prefix", `{"type":"ok"}` + "\n"},
		{"truncated payload", "100 {\"type\":\"ok\"}"},
		{"missing newline", "13 {\"type\":\"ok\"}X"},
		{"length lies short", "2 {\"type\":\"ok\"}\n"},
		{"bad json", "3 {{{\n"},
		{"mid-prefix EOF", "12"},
		{"empty prefix then space", " {}\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadFrame(bufio.NewReader(strings.NewReader(tc.in)), DefaultMaxFrame)
			if err == nil {
				t.Fatal("hostile input accepted")
			}
			if err == io.EOF {
				t.Fatal("hostile input reported as clean EOF")
			}
		})
	}
}

func TestBuildQueryValidation(t *testing.T) {
	// Valid triangle round-trips through QueryPayload.
	q, err := query.New([]graph.Label{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][3]query.VertexID{{0, 1}, {1, 2}, {0, 2}} {
		if err := q.AddEdge(e[0], e[1], 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	labels, edges := QueryPayload(q)
	q2, err := BuildQuery(labels, edges)
	if err != nil {
		t.Fatal(err)
	}
	if q2.NumVertices() != 3 || len(q2.Edges()) != 3 {
		t.Fatalf("round-trip lost structure: %d vertices, %d edges", q2.NumVertices(), len(q2.Edges()))
	}

	hostile := []struct {
		name   string
		labels []uint32
		edges  [][3]uint32
	}{
		{"no vertices", nil, nil},
		{"too many vertices", make([]uint32, 100), nil},
		{"edge endpoint out of range", []uint32{0, 1}, [][3]uint32{{0, 7, 0}}},
		{"huge endpoint", []uint32{0, 1}, [][3]uint32{{0, 1 << 30, 0}}},
		{"self loop", []uint32{0, 1}, [][3]uint32{{1, 1, 0}}},
		{"duplicate edge", []uint32{0, 1}, [][3]uint32{{0, 1, 0}, {1, 0, 0}}},
		{"disconnected", []uint32{0, 1, 2, 3}, [][3]uint32{{0, 1, 0}}},
	}
	for _, tc := range hostile {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := BuildQuery(tc.labels, tc.edges); err == nil {
				t.Fatal("hostile query accepted")
			}
		})
	}
}

func TestEncodeDecodeUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := algotest.RandomGraph(rng, 20, 30, 2, 2)
	s := algotest.RandomStream(rng, g, 25, 0.6, 2)
	got, err := DecodeUpdates(EncodeUpdates(s))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round-trip mismatch:\n got %v\nwant %v", got, s)
	}

	for _, bad := range []string{"", "#comment", "+e 0", "+e 0 1 2\n+e 2 3 4", "?x 1 2", "+e a b c"} {
		if _, err := DecodeUpdates([]string{bad}); err == nil {
			t.Fatalf("bad update line %q accepted", bad)
		}
	}
}

// FuzzWireRoundTrip feeds arbitrary bytes through the frame reader: any
// frame it accepts must re-encode and re-decode to itself, and the
// decoded fields must survive the query/update constructors without
// panicking (bounded by the small maxFrame, hostile lengths cannot
// balloon allocation).
func FuzzWireRoundTrip(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteFrame(&seed, &Frame{Type: TypeRegister, ID: 1, Query: "q", Algo: "GraphFlow",
		Labels: []uint32{0, 1}, Edges: [][3]uint32{{0, 1, 0}}})
	_ = WriteFrame(&seed, &Frame{Type: TypeBatch, ID: 2, Updates: []string{"+e 0 1 0", "-e 1 2"}})
	f.Add(seed.Bytes())
	f.Add([]byte("3 {}\njunk"))
	f.Add([]byte("999999999999 {}\n"))
	f.Add([]byte("13 {\"type\":\"ok\"}\n"))
	f.Add([]byte{0, 1, 2, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			fr, err := ReadFrame(br, 1<<16)
			if err != nil {
				return // rejection is fine; panics are not
			}
			var buf bytes.Buffer
			if err := WriteFrame(&buf, fr); err != nil {
				t.Fatalf("re-encode of accepted frame failed: %v", err)
			}
			fr2, err := ReadFrame(bufio.NewReader(&buf), 0)
			if err != nil {
				t.Fatalf("re-decode failed: %v (frame %+v)", err, fr)
			}
			if !reflect.DeepEqual(fr, fr2) {
				t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", fr2, fr)
			}
			// Hostile field contents must error, never panic.
			if q, err := BuildQuery(fr.Labels, fr.Edges); err == nil && q == nil {
				t.Fatal("BuildQuery returned nil, nil")
			}
			if s, err := DecodeUpdates(fr.Updates); err == nil && len(s) != len(fr.Updates) {
				t.Fatal("DecodeUpdates dropped lines without error")
			}
		}
	})
}
