package server

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"paracosm/internal/obs"
	"paracosm/internal/stream"
	"paracosm/internal/wal"
)

// startWALServer starts a server in WAL mode and blocks until recovery
// completes (unlike plain Start, which returns mid-replay).
func startWALServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv := startTestServer(t, uniformGraph(0), cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.WaitReady(ctx); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	return srv
}

// streamThrough registers (optionally) and streams s via one client,
// flushing before return so every update is applied server-side.
func streamThrough(t *testing.T, srv *Server, register bool, s stream.Stream) {
	t.Helper()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if register {
		if err := cl.Register("q", "GraphFlow", singleEdgeQuery(t)); err != nil {
			t.Fatal(err)
		}
	}
	if len(s) > 0 {
		if _, err := cl.Send(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestServerRecoveryGracefulRestart checks the snapshot path end to end:
// a graceful Close writes a final snapshot, and a restart with an EMPTY
// base graph — proving the snapshot, not the caller's graph, supplies
// the state — resumes with identical standing queries, stats and Seq
// watermarks, and keeps matching the sequential oracle on new updates.
func TestServerRecoveryGracefulRestart(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))
	g := uniformGraph(30)
	q := singleEdgeQuery(t)
	full := insertOnlyStream(rng, g, 160, 1)
	pre, post := full[:100], full[100:]
	wantPos, wantNeg := oracleTotals(t, g, q, full)

	cfg := Config{WALDir: dir, Fsync: wal.SyncOff, SnapshotEvery: -1}

	srv := startTestServer(t, g, cfg)
	if err := srv.WaitReady(context.Background()); err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Register("q", "GraphFlow", q); err != nil {
		t.Fatal(err)
	}
	// A register/deregister pair must also survive the restart — as its
	// absence.
	if err := cl.Register("doomed", "Symbi", singleEdgeQuery(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Send(pre); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Deregister("doomed"); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	// WAL mode: queries are durable server state, so the disconnect must
	// NOT drop them.
	if n := srv.NumQueries(); n != 1 {
		t.Fatalf("queries after disconnect = %d, want 1", n)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2 := startWALServer(t, cfg) // empty base graph: the snapshot must win
	if n := srv2.NumQueries(); n != 1 {
		t.Fatalf("queries after restart = %d, want 1", n)
	}
	// Graceful restart loads the final snapshot; nothing should need
	// replaying.
	if n := srv2.walReplayed.Load(); n != 0 {
		t.Fatalf("replayed %d records after graceful close, want 0", n)
	}

	// Stream the tail and compare cumulative totals with the full oracle:
	// recovered graph + stats baseline + new deltas must be exact.
	cl2, err := Dial(srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if err := cl2.Subscribe("q"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl2.Send(post); err != nil {
		t.Fatal(err)
	}
	if err := cl2.Flush(); err != nil {
		t.Fatal(err)
	}
	st := srv2.multi.Stats()["q"]
	if st.Positive != wantPos || st.Negative != wantNeg {
		t.Fatalf("recovered totals (+%d,-%d), oracle (+%d,-%d)", st.Positive, st.Negative, wantPos, wantNeg)
	}

	// Seq watermark continuity: every pre-restart insert produced one
	// nonzero delta, so the first post-restart delta is len(pre)+1.
	var first uint64
	for d := range cl2.Deltas() {
		first = d.Seq
		break
	}
	if first != uint64(len(pre))+1 {
		t.Fatalf("first Seq after restart = %d, want %d", first, len(pre)+1)
	}
}

// TestServerRecoveryCrashReplay checks the log path: a crash-equivalent
// shutdown (no final snapshot) loses nothing — restart replays the tail
// beyond the last periodic snapshot through the live engine paths, and
// totals equal the uninterrupted sequential oracle.
func TestServerRecoveryCrashReplay(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(13))
	g := uniformGraph(40)
	q := singleEdgeQuery(t)
	full := insertOnlyStream(rng, g, 200, 1)
	wantPos, wantNeg := oracleTotals(t, g, q, full)

	crashCfg := Config{WALDir: dir, Fsync: wal.SyncOff, SnapshotEvery: 64, noFinalSnapshot: true}
	srv := startTestServer(t, g, crashCfg)
	if err := srv.WaitReady(context.Background()); err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Register("q", "GraphFlow", q); err != nil {
		t.Fatal(err)
	}
	// Small chunks: the snapshot cadence is checked per ingestion batch, so
	// one giant batch would snapshot right at the end and leave no tail.
	for off := 0; off < len(full); off += 10 {
		end := off + 10
		if end > len(full) {
			end = len(full)
		}
		if _, err := cl.Send(full[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if n := srv.walSnaps.Load(); n < 2 { // initial + at least one periodic
		t.Fatalf("periodic snapshots = %d, want >= 2", n)
	}
	if err := srv.Close(); err != nil { // crash-equivalent: no final snapshot
		t.Fatal(err)
	}

	srv2 := startWALServer(t, Config{WALDir: dir, Fsync: wal.SyncOff, SnapshotEvery: -1})
	if n := srv2.NumQueries(); n != 1 {
		t.Fatalf("queries after crash restart = %d, want 1", n)
	}
	if n := srv2.walReplayed.Load(); n == 0 {
		t.Fatal("crash restart replayed nothing; the log tail was lost")
	}
	st := srv2.multi.Stats()["q"]
	if st.Positive != wantPos || st.Negative != wantNeg {
		t.Fatalf("recovered totals (+%d,-%d), oracle (+%d,-%d)", st.Positive, st.Negative, wantPos, wantNeg)
	}
	// The metrics surface must expose the recovery counters.
	var sb strings.Builder
	if err := srv2.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{"paracosm_wal_records_total", "paracosm_wal_replayed_records_total", "paracosm_wal_snapshots_total", "paracosm_wal_last_lsn"} {
		if !strings.Contains(sb.String(), series) {
			t.Errorf("WriteMetrics missing %s", series)
		}
	}
}

// TestServerReconnectSeqGapAcrossRestart is the exactly-once-detection
// contract: a subscriber that disconnects, misses deltas, crashes the
// server and resubscribes after restart sees a Seq whose gap from its
// last delivered Seq counts EXACTLY the missed frames.
func TestServerReconnectSeqGapAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(17))
	g := uniformGraph(50)
	full := insertOnlyStream(rng, g, 90, 1)
	// Phase A: 40 subscribed deltas. Phase B: 25 missed while disconnected.
	// Phase C: post-restart, the next delta closes the gap.
	a, b, c := full[:40], full[40:65], full[65:]

	cfg := Config{WALDir: dir, Fsync: wal.SyncOff, SnapshotEvery: -1, noFinalSnapshot: true}
	srv := startTestServer(t, g, cfg)
	if err := srv.WaitReady(context.Background()); err != nil {
		t.Fatal(err)
	}

	clA, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := clA.Register("q", "GraphFlow", singleEdgeQuery(t)); err != nil {
		t.Fatal(err)
	}
	if err := clA.Subscribe("q"); err != nil {
		t.Fatal(err)
	}
	if _, err := clA.Send(a); err != nil {
		t.Fatal(err)
	}
	if err := clA.Flush(); err != nil {
		t.Fatal(err)
	}
	var lastSeqA uint64
	drain := func() {
		for {
			select {
			case d := <-clA.Deltas():
				lastSeqA = d.Seq
			default:
				return
			}
		}
	}
	drain()
	if lastSeqA != uint64(len(a)) {
		t.Fatalf("lastSeqA = %d, want %d", lastSeqA, len(a))
	}
	clA.Close() // subscriber gone; the query stays (WAL mode)

	// Phase B: deltas produced with no subscriber still advance the
	// watermark — they are "missed", not "unnumbered".
	streamThrough(t, srv, false, b)
	if err := srv.Close(); err != nil { // crash: no final snapshot
		t.Fatal(err)
	}

	srv2 := startWALServer(t, cfg)
	clC, err := Dial(srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer clC.Close()
	if err := clC.Subscribe("q"); err != nil {
		t.Fatal(err)
	}
	if _, err := clC.Send(c); err != nil {
		t.Fatal(err)
	}
	if err := clC.Flush(); err != nil {
		t.Fatal(err)
	}
	d := <-clC.Deltas()
	if want := uint64(len(a)+len(b)) + 1; d.Seq != want {
		t.Fatalf("first Seq after reconnect = %d, want %d", d.Seq, want)
	}
	if gap := d.Seq - lastSeqA - 1; gap != uint64(len(b)) {
		t.Fatalf("detected gap = %d missed deltas, want exactly %d", gap, len(b))
	}
}

// TestServerHealthzDuringReplay holds replay at the recoverGate seam and
// probes the readiness split: /healthz must answer 503 "recovering"
// while the log tail is being applied, 200 "ok" after, and WaitReady
// must block exactly as long.
func TestServerHealthzDuringReplay(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(19))
	g := uniformGraph(30)
	full := insertOnlyStream(rng, g, 80, 1)

	cfg := Config{WALDir: dir, Fsync: wal.SyncOff, SnapshotEvery: -1, noFinalSnapshot: true}
	srv := startTestServer(t, g, cfg)
	if err := srv.WaitReady(context.Background()); err != nil {
		t.Fatal(err)
	}
	streamThrough(t, srv, true, full)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	cfg2 := cfg
	cfg2.recoverGate = gate
	cfg2.BatchMax = 16 // several gated batches, not one
	srv2 := startTestServer(t, uniformGraph(0), cfg2)
	mux := obs.NewMuxReady(nil, srv2.Ready)

	probe := func() int {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		return rec.Code
	}
	if srv2.Ready() {
		t.Fatal("Ready before replay released")
	}
	if code := probe(); code != 503 {
		t.Fatalf("/healthz during replay = %d, want 503", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if err := srv2.WaitReady(ctx); err == nil {
		t.Fatal("WaitReady returned while replay was gated")
	}
	cancel()

	close(gate) // release every batch
	if err := srv2.WaitReady(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code := probe(); code != 200 {
		t.Fatalf("/healthz after replay = %d, want 200", code)
	}
	// Every update plus the registration record replays.
	if got := srv2.walReplayed.Load(); got != uint64(len(full))+1 {
		t.Fatalf("replayed %d records, want %d", got, len(full)+1)
	}
}

// TestServerWALDeregisterWithoutOwnership: durable queries outlive their
// registering connection, so any client may deregister them in WAL mode.
func TestServerWALDeregisterWithoutOwnership(t *testing.T) {
	cfg := Config{WALDir: t.TempDir(), Fsync: wal.SyncOff, SnapshotEvery: -1}
	srv := startWALServer(t, cfg)
	streamThrough(t, srv, true, nil) // registers "q", disconnects
	if n := srv.NumQueries(); n != 1 {
		t.Fatalf("queries = %d, want 1", n)
	}
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Deregister("q"); err != nil {
		t.Fatalf("non-owner deregister in WAL mode: %v", err)
	}
	if n := srv.NumQueries(); n != 0 {
		t.Fatalf("queries after deregister = %d, want 0", n)
	}
	if err := cl.Deregister("q"); err == nil {
		t.Fatal("deregistering an unknown query succeeded")
	}
}
