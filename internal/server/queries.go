package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"paracosm/internal/obs"
)

// QueryRow is one live query's row on the /queries debug endpoint (and
// the JSON shape `paracosm top` decodes). Latency quantiles come from the
// per-query histogram (core.TrackQueries, always on in serving mode) and
// are reported in integer microseconds to keep the rows jq/column
// friendly.
type QueryRow struct {
	Name           string  `json:"name"`
	Updates        int     `json:"updates"`
	Safe           int     `json:"safe_updates"`
	Unsafe         int     `json:"unsafe_updates"`
	Escalations    int     `json:"escalations"`
	EscalationRate float64 `json:"escalation_rate"`
	Positive       uint64  `json:"positive"`
	Negative       uint64  `json:"negative"`
	Matches        uint64  `json:"matches"`
	Nodes          uint64  `json:"nodes"`
	P50Micros      int64   `json:"p50_us"`
	P90Micros      int64   `json:"p90_us"`
	P99Micros      int64   `json:"p99_us"`
	MaxMicros      int64   `json:"max_us"`
}

// QueryRows snapshots every live query as a QueryRow, in registration
// order (sort is the endpoint's job).
func (s *Server) QueryRows() []QueryRow {
	snaps := s.multi.QuerySnapshots()
	rows := make([]QueryRow, 0, len(snaps))
	for _, qs := range snaps {
		st := qs.Stats
		rows = append(rows, QueryRow{
			Name:           qs.Name,
			Updates:        st.Updates,
			Safe:           st.SafeUpdates,
			Unsafe:         st.UnsafeUpdates,
			Escalations:    st.Escalations,
			EscalationRate: st.EscalationRate(),
			Positive:       st.Positive,
			Negative:       st.Negative,
			Matches:        st.Positive + st.Negative,
			Nodes:          st.Nodes,
			P50Micros:      qs.P50.Microseconds(),
			P90Micros:      qs.P90.Microseconds(),
			P99Micros:      qs.P99.Microseconds(),
			MaxMicros:      qs.Max.Microseconds(),
		})
	}
	return rows
}

// queriesSortKeys maps the /queries ?by= values to their ordering. Every
// key except "name" sorts descending (hottest first), with name ascending
// as the tiebreak, so the endpoint's default reads as a leaderboard.
var queriesSortKeys = map[string]func(a, b QueryRow) bool{
	"updates":     func(a, b QueryRow) bool { return a.Updates > b.Updates },
	"matches":     func(a, b QueryRow) bool { return a.Matches > b.Matches },
	"escalations": func(a, b QueryRow) bool { return a.Escalations > b.Escalations },
	"latency":     func(a, b QueryRow) bool { return a.P99Micros > b.P99Micros },
	"nodes":       func(a, b QueryRow) bool { return a.Nodes > b.Nodes },
	"name":        nil, // ascending by name (the universal tiebreak)
}

// QueriesHandler serves the /queries debug endpoint: a JSON array of
// QueryRows, sorted by ?by= (updates — the default — matches,
// escalations, latency, nodes, or name; unknown keys are a 400) and
// optionally truncated by ?n=. Mount it on the debug mux next to
// /metrics.
func (s *Server) QueriesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		by := r.URL.Query().Get("by")
		if by == "" {
			by = "updates"
		}
		less, ok := queriesSortKeys[by]
		if !ok {
			http.Error(w, fmt.Sprintf("unknown sort key %q", by), http.StatusBadRequest)
			return
		}
		rows := s.QueryRows()
		sort.Slice(rows, func(i, j int) bool {
			if less != nil {
				a, b := rows[i], rows[j]
				if less(a, b) {
					return true
				}
				if less(b, a) {
					return false
				}
			}
			return rows[i].Name < rows[j].Name
		})
		if ns := r.URL.Query().Get("n"); ns != "" {
			n := 0
			if _, err := fmt.Sscanf(ns, "%d", &n); err != nil || n < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			if n < len(rows) {
				rows = rows[:n]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rows)
	})
}

// WriteQueryMetrics emits one labeled series per live query in Prometheus
// text exposition format — the `paracosm_query_*{name="..."}` view behind
// /metrics. These are gauges, not counters: a query's series disappears
// (and its tally restarts) when it deregisters; the monotonic aggregate
// counterparts live in WriteMetrics. Query names are client-supplied, so
// label values are escaped.
func (s *Server) WriteQueryMetrics(w io.Writer) error {
	rows := s.QueryRows()
	type metric struct {
		name, help string
		v          func(QueryRow) string
	}
	metrics := []metric{
		{"paracosm_query_updates", "Updates processed by one live query.",
			func(r QueryRow) string { return fmt.Sprintf("%d", r.Updates) }},
		{"paracosm_query_safe_updates", "Updates classified safe for one live query.",
			func(r QueryRow) string { return fmt.Sprintf("%d", r.Safe) }},
		{"paracosm_query_escalations", "Updates escalated to the parallel phase for one live query.",
			func(r QueryRow) string { return fmt.Sprintf("%d", r.Escalations) }},
		{"paracosm_query_escalation_rate", "Fraction of one live query's updates that escalated.",
			func(r QueryRow) string { return fmt.Sprintf("%g", r.EscalationRate) }},
		{"paracosm_query_matches", "Incremental matches (positive + negative) for one live query.",
			func(r QueryRow) string { return fmt.Sprintf("%d", r.Matches) }},
		{"paracosm_query_latency_p50_seconds", "Median per-update latency of one live query.",
			func(r QueryRow) string { return fmt.Sprintf("%g", float64(r.P50Micros)/1e6) }},
		{"paracosm_query_latency_p99_seconds", "99th percentile per-update latency of one live query.",
			func(r QueryRow) string { return fmt.Sprintf("%g", float64(r.P99Micros)/1e6) }},
	}
	for _, m := range metrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", m.name, m.help, m.name); err != nil {
			return err
		}
		for _, r := range rows {
			if _, err := fmt.Fprintf(w, "%s{name=\"%s\"} %s\n", m.name, obs.EscapeLabel(r.Name), m.v(r)); err != nil {
				return err
			}
		}
	}
	return nil
}
