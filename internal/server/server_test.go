package server

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"regexp"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"paracosm/internal/algo/algotest"
	"paracosm/internal/core"
	"paracosm/internal/graph"
	"paracosm/internal/obs"
	"paracosm/internal/query"
	"paracosm/internal/refmatch"
	"paracosm/internal/stream"
)

func startTestServer(t *testing.T, g *graph.Graph, cfg Config) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s, err := Start(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// insertOnlyStream returns count distinct edge inserts among g's existing
// vertices: a stream that applies cleanly under ANY interleaving, the
// precondition for the order-insensitive multi-client oracle comparison
// (each match is reported exactly once — when its last edge arrives — so
// per-query totals are interleaving-invariant).
func insertOnlyStream(rng *rand.Rand, g *graph.Graph, count, elabels int) stream.Stream {
	sim := g.Clone()
	n := sim.NumVertices()
	var s stream.Stream
	for len(s) < count {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		if u == v || sim.HasEdge(u, v) {
			continue
		}
		el := graph.Label(rng.Intn(elabels))
		if !sim.AddEdge(u, v, el) {
			continue
		}
		s = append(s, stream.Update{Op: stream.AddEdge, U: u, V: v, ELabel: el})
	}
	return s
}

// oracleTotals replays s sequentially against a clone of g through the
// structure-free reference matcher.
func oracleTotals(t *testing.T, g *graph.Graph, q *query.Graph, s stream.Stream) (pos, neg uint64) {
	t.Helper()
	h := g.Clone()
	for _, upd := range s {
		p, n := refmatch.Delta(h, q, upd, refmatch.Options{})
		pos += p
		neg += n
		if err := upd.Apply(h); err != nil {
			t.Fatal(err)
		}
	}
	return pos, neg
}

// uniformGraph returns n isolated vertices, all label 0.
func uniformGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(0)
	}
	return g
}

// singleEdgeQuery is the smallest query: one label-0 edge. Every label-0
// edge insert produces exactly two new matches (both orientations).
func singleEdgeQuery(t *testing.T) *query.Graph {
	t.Helper()
	q, err := query.New([]graph.Label{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.AddEdge(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	return q
}

// TestServerEndToEndConcurrent is the acceptance scenario: N concurrent
// clients register distinct queries, stream interleaved update chunks,
// and each must receive exactly the deltas a sequential single-engine
// replay produces for its query over the union stream.
func TestServerEndToEndConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := algotest.RandomGraph(rng, 48, 70, 2, 1)

	const nClients = 4
	algos := []string{"GraphFlow", "Symbi", "NewSP", "TurboFlux"}
	queries := make([]*query.Graph, nClients)
	for i := range queries {
		queries[i] = algotest.RandomQuery(rng, g, 3+i%2)
		if queries[i] == nil {
			t.Skip("no query found")
		}
	}
	full := insertOnlyStream(rng, g, 400, 1)
	chunk := len(full) / nClients

	// Sequential oracle per query, over the full union stream.
	wantPos := make([]uint64, nClients)
	wantNeg := make([]uint64, nClients)
	for i, q := range queries {
		wantPos[i], wantNeg[i] = oracleTotals(t, g, q, full)
	}

	srv := startTestServer(t, g, Config{
		SubscriberQueue: 1 << 14,
		Engine:          []core.Option{core.Threads(2), core.BatchSize(8)},
	})

	// Phase 1 — every client registers and subscribes concurrently,
	// before anyone streams: each query must observe the full union
	// stream for the oracle comparison to hold.
	clients := make([]*Client, nClients)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []string
	fail := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	for i := 0; i < nClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := Dial(srv.Addr(), DialConfig{DeltaBuffer: 1 << 14})
			if err != nil {
				fail("client %d dial: %v", i, err)
				return
			}
			clients[i] = cl
			name := fmt.Sprintf("q%d", i)
			if err := cl.Register(name, algos[i], queries[i]); err != nil {
				fail("client %d register: %v", i, err)
				return
			}
			if err := cl.Subscribe(name); err != nil {
				fail("client %d subscribe: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	for _, f := range failures {
		t.Fatal(f)
	}
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()

	// Phase 2 — all clients stream their chunks concurrently, in small
	// sub-batches so the server interleaves them, while a drainer per
	// client collects deltas.
	var sent sync.WaitGroup // all clients done enqueuing their chunk
	sent.Add(nClients)
	for i := 0; i < nClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := clients[i]
			var (
				gotPos, gotNeg, maxDrop uint64
				lastSeq                 uint64
				seqGap                  bool
				drained                 = make(chan struct{})
			)
			go func() {
				defer close(drained)
				for d := range cl.Deltas() {
					gotPos += d.Pos
					gotNeg += d.Neg
					if d.Dropped > maxDrop {
						maxDrop = d.Dropped
					}
					if d.Seq != lastSeq+1 {
						seqGap = true
					}
					lastSeq = d.Seq
				}
			}()

			own := full[i*chunk : (i+1)*chunk]
			for off := 0; off < len(own); off += 10 {
				end := off + 10
				if end > len(own) {
					end = len(own)
				}
				if n, err := cl.Send(own[off:end]); err != nil || n != end-off {
					fail("client %d send: %d, %v", i, n, err)
				}
			}
			sent.Done()
			sent.Wait() // barrier: everyone's updates are enqueued
			if err := cl.Flush(); err != nil {
				fail("client %d flush: %v", i, err)
			}
			cl.Close() // closes Deltas once the read loop drains
			<-drained

			if gotPos != wantPos[i] || gotNeg != wantNeg[i] {
				fail("client %d: deltas (+%d,-%d), oracle (+%d,-%d)", i, gotPos, gotNeg, wantPos[i], wantNeg[i])
			}
			if maxDrop != 0 {
				fail("client %d: %d deltas dropped with an oversized queue", i, maxDrop)
			}
			if seqGap {
				fail("client %d: sequence gap without drops", i)
			}
		}(i)
	}
	wg.Wait()
	for _, f := range failures {
		t.Error(f)
	}

	m := srv.Metrics()
	if m.Ingested != uint64(len(full)) || m.Invalid != 0 {
		t.Errorf("ingested %d (invalid %d), want %d (0)", m.Ingested, m.Invalid, len(full))
	}
	waitUntil(t, "queries deregistered on disconnect", func() bool { return srv.NumQueries() == 0 })
}

// TestServerDeltaSequence drives a single client over a mixed
// insert/delete stream and compares the delta notifications — update
// line, positive and negative counts — against the reference replay,
// and checks the flush barrier: after Flush returns, every delta is
// already buffered client-side (the drain below never waits).
func TestServerDeltaSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := algotest.RandomGraph(rng, 24, 50, 2, 1)
	q := algotest.RandomQuery(rng, g, 3)
	if q == nil {
		t.Skip("no query found")
	}
	s := algotest.RandomStream(rng, g, 60, 0.6, 1)

	// Reference multiset of (update line, +, -) for nonzero deltas.
	type key struct {
		line     string
		pos, neg uint64
	}
	want := map[key]int{}
	h := g.Clone()
	var wantFrames int
	for _, upd := range s {
		p, n := refmatch.Delta(h, q, upd, refmatch.Options{})
		if err := upd.Apply(h); err != nil {
			t.Fatal(err)
		}
		if p+n == 0 {
			continue
		}
		want[key{upd.String(), p, n}]++
		wantFrames++
	}

	srv := startTestServer(t, g, Config{Engine: []core.Option{core.Threads(1)}})

	cl, err := Dial(srv.Addr(), DialConfig{DeltaBuffer: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("seq", "GraphFlow", q); err != nil {
		t.Fatal(err)
	}
	if err := cl.Subscribe("seq"); err != nil {
		t.Fatal(err)
	}
	if n, err := cl.Send(s); err != nil || n != len(s) {
		t.Fatalf("send: %d, %v", n, err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}

	// Non-blocking drain: the flush reply came through the same FIFO as
	// the deltas, so everything must already be here.
	got := map[key]int{}
	gotFrames := 0
drain:
	for {
		select {
		case d := <-cl.Deltas():
			if d.Dropped != 0 {
				t.Fatalf("deltas dropped: %d", d.Dropped)
			}
			got[key{d.Update.String(), d.Pos, d.Neg}]++
			gotFrames++
		default:
			break drain
		}
	}
	if gotFrames != wantFrames {
		t.Fatalf("got %d delta frames, want %d", gotFrames, wantFrames)
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("delta %v: got %d, want %d", k, got[k], n)
		}
	}

	// After deregistration no further deltas flow.
	if err := cl.Deregister("seq"); err != nil {
		t.Fatal(err)
	}
	if srv.NumQueries() != 0 {
		t.Fatalf("NumQueries = %d after deregister", srv.NumQueries())
	}
}

// TestServerSlowSubscriberOverflow: a subscriber that stops reading must
// overflow its bounded queue (drop-and-count) without ever stalling
// ingestion, and the drop counter must be visible through /metrics.
func TestServerSlowSubscriberOverflow(t *testing.T) {
	g := uniformGraph(300)
	q := singleEdgeQuery(t)

	tr := obs.NewTracer(1 << 16)
	srv := startTestServer(t, g, Config{
		SubscriberQueue: 2,
		Tracer:          tr,
		Engine:          []core.Option{core.Threads(1)},
	})

	// Slow subscriber: raw connection, tiny receive buffer, subscribes
	// and then never reads again.
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if tc, ok := raw.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(1 << 10)
	}

	streamer, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer streamer.Close()
	if err := streamer.Register("hot", "GraphFlow", q); err != nil {
		t.Fatal(err)
	}

	br := bufio.NewReader(raw)
	if err := WriteFrame(raw, &Frame{Type: TypeSubscribe, ID: 1, Query: "hot"}); err != nil {
		t.Fatal(err)
	}
	if f, err := ReadFrame(br, 0); err != nil || f.Type != TypeOK {
		t.Fatalf("subscribe: %+v, %v", f, err)
	}
	// From here on the subscriber reads nothing.

	rng := rand.New(rand.NewSource(7))
	updates := insertOnlyStream(rng, g, 6000, 1)
	for off := 0; off < len(updates); off += 500 {
		if n, err := streamer.Send(updates[off : off+500]); err != nil || n != 500 {
			t.Fatalf("send: %d, %v", n, err)
		}
	}
	// Ingestion must complete despite the wedged subscriber: Flush
	// returning IS the no-stall assertion.
	if err := streamer.Flush(); err != nil {
		t.Fatal(err)
	}

	m := srv.Metrics()
	if m.Ingested != uint64(len(updates)) {
		t.Fatalf("ingested %d, want %d", m.Ingested, len(updates))
	}
	if m.Deltas != uint64(len(updates)) {
		t.Fatalf("deltas %d, want %d", m.Deltas, len(updates))
	}
	if m.DeltasDropped == 0 {
		t.Fatal("slow subscriber never overflowed its queue")
	}

	// The drop counter is visible through the obs /metrics endpoint.
	dbg, err := obs.StartServer("127.0.0.1:0", tr, srv.WriteMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()
	resp, err := http.Get("http://" + dbg.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	mre := regexp.MustCompile(`(?m)^paracosm_server_deltas_dropped_total (\d+)$`)
	sub := mre.FindSubmatch(body)
	if sub == nil {
		t.Fatalf("/metrics missing paracosm_server_deltas_dropped_total:\n%s", body)
	}
	if n, _ := strconv.Atoi(string(sub[1])); uint64(n) != m.DeltasDropped {
		t.Fatalf("/metrics reports %s drops, Metrics() reports %d", sub[1], m.DeltasDropped)
	}

	// The tracer ring carries server-class events.
	classes := map[string]bool{}
	for _, ev := range tr.Ring().Snapshot() {
		if ev.Class == "server" {
			classes[ev.Op] = true
		}
	}
	for _, op := range []string{"srv:accept", "srv:register", "srv:subscribe", "srv:ingest", "srv:drop"} {
		if !classes[op] {
			t.Errorf("tracer ring missing %s event (saw %v)", op, classes)
		}
	}
}

// TestClientSlowConsumerFlush: a client that subscribes but never
// drains Deltas must not wedge its own reply demultiplexer — Flush
// returns even when the delta volume far exceeds DeltaBuffer, with the
// overflow counted client-side (drop-and-count, like the server's
// subscriber queues).
func TestClientSlowConsumerFlush(t *testing.T) {
	g := uniformGraph(300)
	q := singleEdgeQuery(t)
	srv := startTestServer(t, g, Config{
		SubscriberQueue: 1 << 15,
		Engine:          []core.Option{core.Threads(1)},
	})

	cl, err := Dial(srv.Addr(), DialConfig{DeltaBuffer: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("slow", "GraphFlow", q); err != nil {
		t.Fatal(err)
	}
	if err := cl.Subscribe("slow"); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	updates := insertOnlyStream(rng, g, 3000, 1)
	for off := 0; off < len(updates); off += 500 {
		if n, err := cl.Send(updates[off : off+500]); err != nil || n != 500 {
			t.Fatalf("send: %d, %v", n, err)
		}
	}
	// Nothing has drained Deltas; with the old blocking read loop this
	// Flush deadlocked against the undelivered deltas.
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	if cl.Dropped() == 0 {
		t.Fatal("overflowing DeltaBuffer counted no client-side drops")
	}

	// Every delta the server delivered was either buffered or counted.
	buffered := uint64(0)
drain:
	for {
		select {
		case <-cl.Deltas():
			buffered++
		default:
			break drain
		}
	}
	m := srv.Metrics()
	delivered := m.Deltas - m.DeltasDropped
	if buffered+cl.Dropped() != delivered {
		t.Fatalf("buffered %d + dropped %d != delivered %d", buffered, cl.Dropped(), delivered)
	}
}

// TestServerSubscribeDeregisterRace hammers SUBSCRIBE against the
// owner's deregister cycle: whatever the interleaving, a subscription
// must never survive the query it attached to — once the name is
// deregistered, no stale subs entry may remain to silently attach to a
// future re-registration.
func TestServerSubscribeDeregisterRace(t *testing.T) {
	g := uniformGraph(20)
	q := singleEdgeQuery(t)
	srv := startTestServer(t, g, Config{Engine: []core.Option{core.Threads(1)}})

	owner, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	sub, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	for i := 0; i < 50; i++ {
		if err := owner.Register("r", "GraphFlow", q); err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for j := 0; j < 4; j++ {
				_ = sub.Subscribe("r") // racing the deregister; errors expected
			}
		}()
		if err := owner.Deregister("r"); err != nil {
			t.Fatal(err)
		}
		<-done
		// Both RPC streams are quiescent and the query is gone: any
		// subscription that slipped into the teardown window is stale.
		srv.mu.Lock()
		stale := len(srv.subs["r"])
		srv.mu.Unlock()
		if stale != 0 {
			t.Fatalf("iteration %d: %d stale subscriptions on a deregistered query", i, stale)
		}
	}
}

// TestServerRejectBackpressure holds the ingestion loop mid-batch with
// the test gate and checks the reject policy's accounting exactly: one
// update held in the open batch plus MaxInflight queued are admitted,
// the remainder of the request is refused.
func TestServerRejectBackpressure(t *testing.T) {
	g := uniformGraph(50)
	q := singleEdgeQuery(t)
	gate := make(chan struct{})
	srv := startTestServer(t, g, Config{
		MaxInflight: 3,
		BatchMax:    1,
		Reject:      true,
		ingestGate:  gate,
		Engine:      []core.Option{core.Threads(1)},
	})

	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("bp", "GraphFlow", q); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(9))
	updates := insertOnlyStream(rng, g, 10, 1)
	// Prime the gate: the ingestion loop pulls exactly one update
	// (BatchMax 1) and parks on the gate inside flushBatch.
	if n, err := cl.Send(updates[:1]); err != nil || n != 1 {
		t.Fatalf("prime send: %d, %v", n, err)
	}
	waitUntil(t, "ingestion loop to park on the gate", func() bool {
		return srv.Metrics().QueueDepth == 0
	})
	// Now the queue (capacity 3) is empty and the consumer is wedged:
	// of the remaining nine updates exactly three fit, six are refused.
	accepted, err := cl.Send(updates[1:])
	if err == nil {
		t.Fatalf("full queue accepted the whole batch (accepted %d)", accepted)
	}
	if accepted != 3 {
		t.Fatalf("accepted %d, want 3", accepted)
	}
	if m := srv.Metrics(); m.Rejected != 6 {
		t.Fatalf("rejected counter = %d, want 6", m.Rejected)
	}

	close(gate)
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	if m := srv.Metrics(); m.Ingested != 4 || m.QueueDepth != 0 {
		t.Fatalf("after drain: ingested %d queue %d, want 4 and 0", m.Ingested, m.QueueDepth)
	}
}

// TestServerConnLimit: connections beyond MaxConns receive an error
// frame and are closed; capacity frees when a connection leaves.
func TestServerConnLimit(t *testing.T) {
	g := uniformGraph(10)
	srv := startTestServer(t, g, Config{MaxConns: 1})

	first, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if err := first.Register("a", "GraphFlow", singleEdgeQuery(t)); err != nil {
		t.Fatal(err)
	}

	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	f, err := ReadFrame(bufio.NewReader(raw), 0)
	if err != nil {
		t.Fatalf("expected error frame, got %v", err)
	}
	if f.Type != TypeError {
		t.Fatalf("frame %+v, want error", f)
	}
	if srv.Metrics().ConnsRejected != 1 {
		t.Fatalf("ConnsRejected = %d", srv.Metrics().ConnsRejected)
	}

	first.Close()
	waitUntil(t, "capacity to free", func() bool { return srv.Metrics().Connections == 0 })
	second, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if err := second.Register("b", "GraphFlow", singleEdgeQuery(t)); err != nil {
		t.Fatalf("register after capacity freed: %v", err)
	}
}

// TestServerDeregisterOnDisconnect: queries die with their owning
// connection, and other connections' subscriptions to them go quiet.
func TestServerDeregisterOnDisconnect(t *testing.T) {
	g := uniformGraph(60)
	q := singleEdgeQuery(t)
	srv := startTestServer(t, g, Config{Engine: []core.Option{core.Threads(1)}})

	owner, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.Register("gone1", "GraphFlow", q); err != nil {
		t.Fatal(err)
	}
	if err := owner.Register("gone2", "Symbi", q); err != nil {
		t.Fatal(err)
	}
	if srv.NumQueries() != 2 {
		t.Fatalf("NumQueries = %d", srv.NumQueries())
	}

	watcher, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()
	if err := watcher.Subscribe("gone1"); err != nil {
		t.Fatal(err)
	}

	owner.Close()
	waitUntil(t, "owner queries to deregister", func() bool { return srv.NumQueries() == 0 })

	rng := rand.New(rand.NewSource(5))
	if _, err := watcher.Send(insertOnlyStream(rng, g, 20, 1)); err != nil {
		t.Fatal(err)
	}
	if err := watcher.Flush(); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-watcher.Deltas():
		t.Fatalf("delta %+v after query deregistration", d)
	default:
	}
	if n := srv.Metrics().Subscriptions; n != 0 {
		t.Fatalf("stale subscriptions: %d", n)
	}
}

// TestServerReadTimeout: an idle connection is dropped at the read
// deadline.
func TestServerReadTimeout(t *testing.T) {
	g := uniformGraph(10)
	srv := startTestServer(t, g, Config{ReadTimeout: 100 * time.Millisecond})

	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	waitUntil(t, "idle connection to be dropped", func() bool { return srv.Metrics().Connections == 0 })
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := ReadFrame(bufio.NewReader(raw), 0); err == nil {
		t.Fatal("read succeeded on a dropped connection")
	}
}

// TestServerGracefulShutdown: Close drains admitted updates, releases
// every goroutine (checked against the pre-test baseline), and is
// idempotent; clients see their in-flight requests fail, not hang.
func TestServerGracefulShutdown(t *testing.T) {
	before := runtime.NumGoroutine()

	g := uniformGraph(80)
	q := singleEdgeQuery(t)
	srv := startTestServer(t, g, Config{Engine: []core.Option{core.Threads(2)}})

	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("shut", "GraphFlow", q); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	updates := insertOnlyStream(rng, g, 50, 1)
	if n, err := cl.Send(updates); err != nil || n != len(updates) {
		t.Fatalf("send: %d, %v", n, err)
	}

	// Everything admitted before Close must be drained through the
	// engines (drain-then-close), even with no flush in between.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	m := srv.Metrics()
	if m.Ingested+m.Invalid != uint64(len(updates)) || m.QueueDepth != 0 {
		t.Fatalf("drain lost updates: ingested %d invalid %d queue %d", m.Ingested, m.Invalid, m.QueueDepth)
	}

	if err := cl.Register("late", "GraphFlow", q); err == nil {
		t.Fatal("request succeeded after shutdown")
	}
	cl.Close()

	waitUntil(t, "goroutines to settle", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})
}

// TestOfferDeltaDropAndCount pins the bounded-queue contract at the unit
// level: capacity admits frames carrying the Seq fanout stamped on them,
// overflow drops and counts (so the subscriber sees the drop as a Seq
// gap), a closed connection neither admits nor counts.
func TestOfferDeltaDropAndCount(t *testing.T) {
	cn := &conn{out: make(chan *Frame, 2), closed: make(chan struct{})}
	for i := 1; i <= 5; i++ {
		// fanout stamps the query's produced-delta watermark before
		// offering; the watermark advances whether or not the offer lands.
		cn.offerDelta(&Frame{Type: TypeDelta, Seq: uint64(i)})
	}
	if cn.dropped != 3 {
		t.Fatalf("dropped %d, want 3", cn.dropped)
	}
	f1 := <-cn.out
	f2 := <-cn.out
	if f1.Seq != 1 || f2.Seq != 2 {
		t.Fatalf("admitted seqs %d,%d", f1.Seq, f2.Seq)
	}
	ok := cn.offerDelta(&Frame{Type: TypeDelta, Seq: 6})
	f3 := <-cn.out
	if !ok || f3.Seq != 6 || f3.Dropped != 3 {
		t.Fatalf("post-drain frame: ok=%v seq=%d dropped=%d", ok, f3.Seq, f3.Dropped)
	}
	// Seqs 3-5 never arrived: the gap between delivered frames (2 → 6) is
	// exactly the drop count the next frame carries.
	if gap := f3.Seq - f2.Seq - 1; gap != f3.Dropped {
		t.Fatalf("seq gap %d != dropped %d", gap, f3.Dropped)
	}
	close(cn.closed)
	if cn.offerDelta(&Frame{Type: TypeDelta, Seq: 7}) {
		t.Fatal("offer succeeded on closed connection")
	}
	if cn.dropped != 3 {
		t.Fatalf("closed-connection offer counted as drop: %d", cn.dropped)
	}
}
