// Package server implements the streaming CSM service: a long-lived TCP
// front end over core.MultiEngine through which clients register named
// continuous queries, push ΔG update streams, and subscribe to per-query
// match-delta notifications — the operating model of production
// continuous-subgraph-matching deployments (Choudhury & Holder's
// large-scale continuous queries on streams; Mnemonic's streaming
// serving system), layered on the ParaCOSM executors.
//
// The wire protocol is length-prefixed NDJSON: every message in either
// direction is one Frame, serialized as
//
//	<decimal payload length> <JSON object>\n
//
// The explicit length prefix bounds hostile input (a reader never
// buffers more than its configured frame limit) while the
// one-object-per-line JSON body keeps captures greppable and the codec
// stdlib-only. Update payloads reuse the internal/stream text codec
// ("+e u v l", "-e u v", ...), so a wire capture's update lines are
// directly replayable through the batch CLI.
package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// Protocol verbs (Frame.Type). Client→server requests carry an ID the
// server echoes in the matching "ok"/"error" reply; "delta" frames are
// server-initiated and unnumbered.
const (
	// TypeRegister registers a named continuous query: Query names it,
	// Algo picks the algorithm, Labels/Edges carry the query graph.
	TypeRegister = "register"
	// TypeDeregister drops a query registered by this connection.
	TypeDeregister = "deregister"
	// TypeUpdate pushes update lines into the ingestion path (one or
	// many; "batch" is an alias kept distinct for traffic legibility).
	TypeUpdate = "update"
	// TypeBatch is TypeUpdate for many lines at once.
	TypeBatch = "batch"
	// TypeSubscribe starts match-delta notifications for Query on this
	// connection.
	TypeSubscribe = "subscribe"
	// TypeFlush is a barrier: the "ok" reply is sent only after every
	// update enqueued before it has been processed and its deltas fanned
	// out, and after any deltas already queued to this connection.
	TypeFlush = "flush"
	// TypeOK acknowledges a request (ID echoes the request).
	TypeOK = "ok"
	// TypeError rejects a request (ID echoes the request, Err explains).
	TypeError = "error"
	// TypeDelta notifies one subscriber of one update's nonzero ΔM.
	TypeDelta = "delta"
)

// Frame is one protocol message in either direction. Fields are a union
// over the verbs; unused fields are omitted on the wire.
type Frame struct {
	Type string `json:"type"`
	// ID is the client-assigned request id, echoed in the reply.
	ID uint64 `json:"id,omitempty"`
	// Query is the query name (register/deregister/subscribe/delta).
	Query string `json:"query,omitempty"`
	// Algo is the algorithm name for register (see internal/algo).
	Algo string `json:"algo,omitempty"`
	// Labels are the query graph's per-vertex labels (register).
	Labels []uint32 `json:"labels,omitempty"`
	// Edges are the query graph's edges as (u, v, elabel) (register).
	Edges [][3]uint32 `json:"edges,omitempty"`
	// Updates carry stream-codec lines (update/batch).
	Updates []string `json:"updates,omitempty"`
	// Update is the stream-codec line of a delta's triggering update.
	Update string `json:"update,omitempty"`
	// Pos/Neg are the incremental match counts of a delta.
	Pos uint64 `json:"pos,omitempty"`
	Neg uint64 `json:"neg,omitempty"`
	// Seq is the query's produced-delta watermark (1-based): the count of
	// nonzero deltas the query has produced since it was registered,
	// delivered anywhere or not. Within one subscription the delivered
	// Seqs are strictly increasing, and a gap is exactly the number of
	// frames this subscriber missed — to queue overflow (see Dropped) or,
	// on a durable server, to a disconnect spanning a restart: the
	// watermark is persisted in snapshots and re-derived by log replay,
	// so it never regresses across a crash.
	Seq uint64 `json:"seq,omitempty"`
	// Dropped is the cumulative count of deltas this subscriber's queue
	// overflowed (drop-and-count, the obs.Ring convention).
	Dropped uint64 `json:"dropped,omitempty"`
	// Accepted is how many update lines an update/batch reply admitted
	// into the ingestion queue.
	Accepted int `json:"accepted,omitempty"`
	// Err is the failure reason of an error reply.
	Err string `json:"error,omitempty"`

	// enq is the fan-out enqueue time of a delta frame, stamped only when
	// the server has a tracer: the writer goroutine observes the frame's
	// subscriber-queue dwell and wire-write time from it (pipeline stages
	// sub_queue and wire_write). Unexported, so it never hits the wire.
	enq time.Time
}

// DefaultMaxFrame bounds a single wire frame (1 MiB): large enough for
// multi-thousand-update batches, small enough that a hostile length
// prefix cannot balloon reader memory.
const DefaultMaxFrame = 1 << 20

// WriteFrame serializes f as one length-prefixed NDJSON frame.
func WriteFrame(w io.Writer, f *Frame) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("server: marshal frame: %w", err)
	}
	if _, err := fmt.Fprintf(w, "%d ", len(payload)); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	_, err = w.Write([]byte{'\n'})
	return err
}

// ReadFrame reads one length-prefixed NDJSON frame, rejecting payloads
// over maxFrame bytes (DefaultMaxFrame when maxFrame <= 0) without
// buffering them. io.EOF is returned only at a clean frame boundary.
func ReadFrame(r *bufio.Reader, maxFrame int) (*Frame, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	n := 0
	digits := 0
	for {
		b, err := r.ReadByte()
		if err != nil {
			if err == io.EOF && digits == 0 {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("server: frame length: %w", err)
		}
		if b == ' ' && digits > 0 {
			break
		}
		if b < '0' || b > '9' || digits >= 10 {
			return nil, fmt.Errorf("server: malformed frame length prefix")
		}
		n = n*10 + int(b-'0')
		digits++
		if n > maxFrame {
			return nil, fmt.Errorf("server: frame of %d bytes exceeds limit %d", n, maxFrame)
		}
	}
	payload := make([]byte, n+1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("server: frame payload: %w", err)
	}
	if payload[n] != '\n' {
		return nil, fmt.Errorf("server: frame missing newline terminator")
	}
	var f Frame
	if err := json.Unmarshal(payload[:n], &f); err != nil {
		return nil, fmt.Errorf("server: frame json: %w", err)
	}
	return &f, nil
}

// QueryPayload flattens q into the register frame's Labels/Edges fields.
func QueryPayload(q *query.Graph) (labels []uint32, edges [][3]uint32) {
	labels = make([]uint32, q.NumVertices())
	for u := 0; u < q.NumVertices(); u++ {
		labels[u] = uint32(q.Label(query.VertexID(u)))
	}
	for _, e := range q.Edges() {
		edges = append(edges, [3]uint32{uint32(e.U), uint32(e.V), uint32(e.ELabel)})
	}
	return labels, edges
}

// BuildQuery reconstructs a finalized query graph from a register
// frame's Labels/Edges payload. All structural validation (vertex count
// limit, edge endpoints, duplicate edges, connectivity) is delegated to
// the query package, so hostile payloads fail with an error, never a
// panic.
func BuildQuery(labels []uint32, edges [][3]uint32) (*query.Graph, error) {
	ls := make([]graph.Label, len(labels))
	for i, l := range labels {
		ls[i] = graph.Label(l)
	}
	q, err := query.New(ls)
	if err != nil {
		return nil, err
	}
	for _, e := range edges {
		if e[0] >= uint32(len(labels)) || e[1] >= uint32(len(labels)) {
			return nil, fmt.Errorf("query: edge (%d,%d) out of range", e[0], e[1])
		}
		if err := q.AddEdge(query.VertexID(e[0]), query.VertexID(e[1]), graph.Label(e[2])); err != nil {
			return nil, err
		}
	}
	if err := q.Finalize(); err != nil {
		return nil, err
	}
	return q, nil
}

// EncodeUpdates renders s as stream-codec lines for an update frame.
func EncodeUpdates(s stream.Stream) []string {
	out := make([]string, len(s))
	for i, u := range s {
		out[i] = u.String()
	}
	return out
}

// DecodeUpdates parses update frame lines back into a stream. Every
// entry must be exactly one update (no comments, no embedded extra
// lines), so a frame round-trips to itself.
func DecodeUpdates(lines []string) (stream.Stream, error) {
	out := make(stream.Stream, 0, len(lines))
	for i, ln := range lines {
		trimmed := strings.TrimSpace(ln)
		if trimmed == "" || trimmed != ln || strings.ContainsRune(ln, '\n') {
			return nil, fmt.Errorf("update %d: %q is not exactly one update", i, ln)
		}
		u, err := stream.ParseUpdate(ln)
		if err != nil {
			return nil, fmt.Errorf("update %d: %w", i, err)
		}
		out = append(out, u)
	}
	return out, nil
}
