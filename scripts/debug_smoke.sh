#!/usr/bin/env bash
# End-to-end smoke test of the observability layer: generate a tiny
# dataset, run paracosm with the /debug server enabled, and verify that
# /healthz, /metrics and /trace answer while the run lingers. Exits
# non-zero on any failure; CI runs this as a gating step.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${DEBUG_SMOKE_PORT:-18080}"
ADDR="127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
trap 'kill "${RUN_PID:-}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "== gendata =="
go run ./cmd/gendata -out "$WORK" -scale 0.001

echo "== paracosm -debug-addr $ADDR =="
go build -o "$WORK/paracosm" ./cmd/paracosm
QUERY="$(ls "$WORK"/query_*.txt | head -1)"
"$WORK/paracosm" \
    -data "$WORK/data_graph.txt" \
    -query "$QUERY" \
    -stream "$WORK/insertion_stream.txt" \
    -algo GraphFlow -threads 2 -budget 30s \
    -debug-addr "$ADDR" \
    -trace-out "$WORK/trace.jsonl" \
    -debug-linger 15s >"$WORK/run.out" 2>&1 &
RUN_PID=$!

echo "== waiting for /healthz =="
ok=""
for _ in $(seq 1 60); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
        ok=1
        break
    fi
    if ! kill -0 "$RUN_PID" 2>/dev/null; then
        echo "paracosm exited before the debug server answered:" >&2
        cat "$WORK/run.out" >&2
        exit 1
    fi
    sleep 0.5
done
if [ -z "$ok" ]; then
    echo "debug server never became healthy" >&2
    cat "$WORK/run.out" >&2
    exit 1
fi
echo "healthz: $(curl -s "http://$ADDR/healthz")"

echo "== /metrics =="
# No tee-into-head: the exposition now exceeds the pipe buffer (stage
# histograms), so head's early exit would SIGPIPE the producer.
curl -s "http://$ADDR/metrics" -o "$WORK/metrics.txt"
head -5 "$WORK/metrics.txt"
grep -q '^paracosm_updates_total' "$WORK/metrics.txt"
grep -q '^paracosm_update_total_seconds_count' "$WORK/metrics.txt"

echo "== /trace =="
curl -s "http://$ADDR/trace?n=3" | tee "$WORK/trace_head.jsonl"
head -1 "$WORK/trace_head.jsonl" | grep -q '"seq"'

kill "$RUN_PID" 2>/dev/null || true
wait "$RUN_PID" 2>/dev/null || true

echo "== trace analysis =="
if [ -s "$WORK/trace.jsonl" ]; then
    go run ./cmd/paracosm trace -top 3 "$WORK/trace.jsonl"
fi

echo "debug smoke OK"
