#!/usr/bin/env bash
# Prometheus exposition lint: boot `paracosm serve` with a debug
# endpoint on a generated dataset, scrape /metrics before and after
# driving client traffic, and validate both scrapes with
# cmd/metricslint — well-formed names and label escaping, unique
# series, one TYPE per metric, and monotone `_total` counters across
# the two scrapes. Exits non-zero on any violation; CI runs this as a
# gating step.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${METRICS_LINT_PORT:-17410}"
DBG_PORT="${METRICS_LINT_DEBUG_PORT:-18091}"
ADDR="127.0.0.1:${PORT}"
DBG="127.0.0.1:${DBG_PORT}"
WORK="$(mktemp -d)"
trap 'kill "${CLI_PID:-}" "${SRV_PID:-}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "== gendata =="
go run ./cmd/gendata -out "$WORK" -scale 0.001

echo "== build =="
go build -o "$WORK/paracosm" ./cmd/paracosm
go build -o "$WORK/metricslint" ./cmd/metricslint
QUERY="$(ls "$WORK"/query_*.txt | head -1)"
STREAM="$WORK/insertion_stream.txt"

echo "== serve on $ADDR =="
# -window turns on the batch-dynamic executor so the paracosm_window_*
# counters move between the two scrapes (monotonicity is then checked on
# live, not frozen-at-zero, series); -wal-dir turns on the durability
# layer so the paracosm_wal_* series are linted live too.
"$WORK/paracosm" serve -data "$WORK/data_graph.txt" -addr "$ADDR" \
    -threads 2 -window 8 -wal-dir "$WORK/wal" -snapshot-every 500 \
    -debug-addr "$DBG" >"$WORK/serve.out" 2>&1 &
SRV_PID=$!

ok=""
for _ in $(seq 1 60); do
    if curl -sf "http://$DBG/healthz" >/dev/null 2>&1; then
        ok=1
        break
    fi
    if ! kill -0 "$SRV_PID" 2>/dev/null; then
        echo "serve exited before becoming healthy:" >&2
        cat "$WORK/serve.out" >&2
        exit 1
    fi
    sleep 0.5
done
if [ -z "$ok" ]; then
    echo "serve never became healthy" >&2
    cat "$WORK/serve.out" >&2
    exit 1
fi

echo "== scrape 1 (idle) =="
curl -sf "http://$DBG/metrics" >"$WORK/scrape1.txt"
wc -l "$WORK/scrape1.txt"

echo "== client traffic =="
# A query name with label-hostile characters exercises EscapeLabel on
# the per-query labeled series; -linger keeps the query registered so
# scrape 2 sees those series live.
"$WORK/paracosm" client -addr "$ADDR" -name 'q"lint\1' -algo GraphFlow \
    -query "$QUERY" -stream "$STREAM" -subscribe -linger 60s \
    >"$WORK/client.out" &
CLI_PID=$!
ok=""
for _ in $(seq 1 120); do
    grep -q '^matches' "$WORK/client.out" 2>/dev/null && ok=1 && break
    if ! kill -0 "$CLI_PID" 2>/dev/null; then
        echo "client exited before reporting totals:" >&2
        cat "$WORK/client.out" >&2
        exit 1
    fi
    sleep 0.5
done
[ -n "$ok" ] || { echo "client never reported totals" >&2; exit 1; }
grep '^matches' "$WORK/client.out"

echo "== scrape 2 (after traffic, query live) =="
curl -sf "http://$DBG/metrics" >"$WORK/scrape2.txt"
wc -l "$WORK/scrape2.txt"
grep -q '^paracosm_query_updates{name="q\\"lint' "$WORK/scrape2.txt"
# The windowed executor must have committed the client's stream: every
# update lands in either a parallel group or a serial fallback.
awk '/^paracosm_window_(unsafe_parallel|fallback_serial)_total /{n+=$2} END{exit n>0?0:1}' "$WORK/scrape2.txt" \
    || { echo "window counters did not move under -window traffic" >&2; exit 1; }
# The WAL must have logged every accepted update.
awk '/^paracosm_wal_records_total /{n=$2} END{exit n>0?0:1}' "$WORK/scrape2.txt" \
    || { echo "paracosm_wal_records_total did not move under -wal-dir traffic" >&2; exit 1; }

echo "== metricslint =="
"$WORK/metricslint" "$WORK/scrape1.txt" "$WORK/scrape2.txt"

kill "$CLI_PID" 2>/dev/null || true
wait "$CLI_PID" 2>/dev/null || true
CLI_PID=""

kill -TERM "$SRV_PID"
wait "$SRV_PID"
SRV_PID=""

echo "metrics lint OK"
