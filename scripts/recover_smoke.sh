#!/usr/bin/env bash
# Crash-recovery smoke test of the durability layer (DESIGN.md §16):
# start `paracosm serve` with a WAL directory, stream updates one per
# frame with always-fsync, kill the server with SIGKILL mid-stream,
# restart it from the WAL, and require the recovered standing query's
# totals to equal a sequential batch-CLI replay of exactly the updates
# the server had applied (the prefix oracle). Then stream the remainder
# and require the final totals to equal the uninterrupted full-stream
# oracle — crash + recovery + resume must be bit-for-bit a run that
# never crashed. Exits non-zero on any failure; CI runs this as a
# gating step.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${RECOVER_SMOKE_PORT:-17420}"
DBG_PORT="${RECOVER_SMOKE_DEBUG_PORT:-18101}"
ADDR="127.0.0.1:${PORT}"
DBG="127.0.0.1:${DBG_PORT}"
WORK="$(mktemp -d)"
trap 'kill -9 "${CLI_PID:-}" "${SRV_PID:-}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "== gendata =="
go run ./cmd/gendata -out "$WORK" -scale 0.001

echo "== build =="
go build -o "$WORK/paracosm" ./cmd/paracosm
QUERY="$(ls "$WORK"/query_*.txt | head -1)"
# Pure update lines, so "N applied updates" == the first N lines.
grep -v -e '^#' -e '^[[:space:]]*$' "$WORK/insertion_stream.txt" >"$WORK/stream.txt"
STREAM="$WORK/stream.txt"
TOTAL="$(wc -l <"$STREAM")"
WALDIR="$WORK/wal"

echo "== full-stream sequential oracle =="
"$WORK/paracosm" \
    -data "$WORK/data_graph.txt" -query "$QUERY" -stream "$STREAM" \
    -algo GraphFlow -threads 1 -inter=false >"$WORK/oracle_full.out"
ORACLE_FULL="$(sed -n 's/^matches *: \(+[0-9]* \/ -[0-9]*\).*/\1/p' "$WORK/oracle_full.out")"
echo "full oracle ($TOTAL updates): $ORACLE_FULL"

wait_healthy() {
    local pid="$1" out="$2"
    for _ in $(seq 1 120); do
        if curl -sf "http://$DBG/healthz" >/dev/null 2>&1; then
            return 0
        fi
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "serve exited before becoming healthy:" >&2
            cat "$out" >&2
            return 1
        fi
        sleep 0.5
    done
    echo "serve never became healthy" >&2
    cat "$out" >&2
    return 1
}

echo "== serve on $ADDR (wal-dir, fsync always) =="
"$WORK/paracosm" serve -data "$WORK/data_graph.txt" -addr "$ADDR" \
    -wal-dir "$WALDIR" -fsync always -snapshot-every 150 \
    -threads 2 -debug-addr "$DBG" >"$WORK/serve1.out" 2>&1 &
SRV_PID=$!
wait_healthy "$SRV_PID" "$WORK/serve1.out"

echo "== client streams one update per frame =="
# -chunk 1: every update is its own request, so the kill lands between
# single-update batches and the applied prefix is a clean line count.
"$WORK/paracosm" client -addr "$ADDR" -name smoke -algo GraphFlow \
    -query "$QUERY" -stream "$STREAM" -chunk 1 \
    >"$WORK/client1.out" 2>&1 &
CLI_PID=$!

echo "== wait for mid-stream, then SIGKILL =="
KILL_AT=$((TOTAL / 3))
[ "$KILL_AT" -gt 150 ] || KILL_AT=150
ok=""
for _ in $(seq 1 600); do
    ING="$(curl -s "http://$DBG/metrics" 2>/dev/null \
        | sed -n 's/^paracosm_server_updates_ingested_total \([0-9][0-9]*\)$/\1/p')"
    if [ "${ING:-0}" -ge "$KILL_AT" ]; then
        ok=1
        break
    fi
    if ! kill -0 "$CLI_PID" 2>/dev/null; then
        # The client finished the whole stream before we could kill —
        # dataset too small to crash mid-stream.
        echo "client finished before reaching $KILL_AT ingested updates" >&2
        cat "$WORK/client1.out" >&2
        exit 1
    fi
    sleep 0.1
done
[ -n "$ok" ] || { echo "never reached $KILL_AT ingested updates" >&2; exit 1; }
kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""
# The client dies with the connection; its exit code is expected noise.
wait "$CLI_PID" 2>/dev/null || true
CLI_PID=""
echo "killed server after >= $KILL_AT ingested updates"

ls -l "$WALDIR"

echo "== restart from the WAL (no -data) =="
"$WORK/paracosm" serve -addr "$ADDR" \
    -wal-dir "$WALDIR" -fsync always -snapshot-every 150 \
    -threads 2 -debug-addr "$DBG" >"$WORK/serve2.out" 2>&1 &
SRV_PID=$!
wait_healthy "$SRV_PID" "$WORK/serve2.out"

echo "== recovered standing query =="
curl -s "http://$DBG/queries" | tee "$WORK/queries.json"
grep -q '"name": "smoke"' "$WORK/queries.json"
U="$(sed -n 's/^ *"updates": \([0-9][0-9]*\),$/\1/p' "$WORK/queries.json" | head -1)"
POS="$(sed -n 's/^ *"positive": \([0-9][0-9]*\),$/\1/p' "$WORK/queries.json" | head -1)"
NEG="$(sed -n 's/^ *"negative": \([0-9][0-9]*\),$/\1/p' "$WORK/queries.json" | head -1)"
echo "recovered: $U updates, +$POS / -$NEG"
[ "${U:-0}" -ge "$KILL_AT" ] || { echo "recovered fewer updates ($U) than observed ingested ($KILL_AT)" >&2; exit 1; }
[ "$U" -lt "$TOTAL" ] || { echo "server applied the whole stream before the kill; not a mid-stream crash" >&2; exit 1; }

echo "== prefix oracle: sequential replay of the first $U updates =="
head -n "$U" "$STREAM" >"$WORK/prefix.txt"
"$WORK/paracosm" \
    -data "$WORK/data_graph.txt" -query "$QUERY" -stream "$WORK/prefix.txt" \
    -algo GraphFlow -threads 1 -inter=false >"$WORK/oracle_prefix.out"
ORACLE_PREFIX="$(sed -n 's/^matches *: \(+[0-9]* \/ -[0-9]*\).*/\1/p' "$WORK/oracle_prefix.out")"
if [ "+$POS / -$NEG" != "$ORACLE_PREFIX" ]; then
    echo "recovered totals '+$POS / -$NEG' != prefix oracle '$ORACLE_PREFIX'" >&2
    exit 1
fi
echo "recovered totals match the prefix oracle: $ORACLE_PREFIX"

echo "== wal metrics and snapshot on disk =="
# Right after recovery: the replay counters moved, the append counters
# (records/fsyncs, counted since open) have not yet.
curl -s "http://$DBG/metrics" | tee "$WORK/metrics.txt" | grep '^paracosm_wal_' || true
for series in paracosm_wal_replayed_records_total paracosm_wal_last_lsn; do
    VAL="$(sed -n "s/^$series \([0-9][0-9]*\)\$/\1/p" "$WORK/metrics.txt")"
    if [ "${VAL:-0}" -le 0 ]; then
        echo "$series is ${VAL:-missing}, want > 0" >&2
        exit 1
    fi
done
ls "$WALDIR"/*.pcsnap >/dev/null || { echo "no snapshot file in $WALDIR" >&2; exit 1; }

echo "== stream the remaining $((TOTAL - U)) updates =="
tail -n "+$((U + 1))" "$STREAM" >"$WORK/tail.txt"
"$WORK/paracosm" client -addr "$ADDR" -stream "$WORK/tail.txt" >"$WORK/client2.out" 2>&1
cat "$WORK/client2.out"

echo "== final totals must equal the uninterrupted full-stream oracle =="
curl -s "http://$DBG/queries" >"$WORK/queries2.json"
U2="$(sed -n 's/^ *"updates": \([0-9][0-9]*\),$/\1/p' "$WORK/queries2.json" | head -1)"
POS2="$(sed -n 's/^ *"positive": \([0-9][0-9]*\),$/\1/p' "$WORK/queries2.json" | head -1)"
NEG2="$(sed -n 's/^ *"negative": \([0-9][0-9]*\),$/\1/p' "$WORK/queries2.json" | head -1)"
if [ "$U2" != "$TOTAL" ]; then
    echo "final update count $U2 != stream length $TOTAL" >&2
    exit 1
fi
if [ "+$POS2 / -$NEG2" != "$ORACLE_FULL" ]; then
    echo "final totals '+$POS2 / -$NEG2' != full oracle '$ORACLE_FULL'" >&2
    exit 1
fi
echo "crash + recovery + resume == uninterrupted run: $ORACLE_FULL"

echo "== wal append counters moved under the tail traffic =="
curl -s "http://$DBG/metrics" >"$WORK/metrics2.txt"
for series in paracosm_wal_records_total paracosm_wal_fsyncs_total paracosm_wal_snapshots_total; do
    VAL="$(sed -n "s/^$series \([0-9][0-9]*\)\$/\1/p" "$WORK/metrics2.txt")"
    if [ "${VAL:-0}" -le 0 ]; then
        echo "$series is ${VAL:-missing}, want > 0" >&2
        exit 1
    fi
done

echo "== graceful shutdown (SIGTERM) =="
kill -TERM "$SRV_PID"
wait "$SRV_PID"
SRV_PID=""
grep -q 'shutting down' "$WORK/serve2.out"

echo "recover smoke OK"
