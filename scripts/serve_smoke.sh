#!/usr/bin/env bash
# End-to-end smoke test of the serving layer: generate a tiny dataset,
# compute the sequential single-engine oracle totals, start `paracosm
# serve`, drive it with `paracosm client` (register + subscribe + stream
# + flush), and require the streamed delta totals to equal the oracle.
# Also checks the serving-layer /metrics gauges, the /queries debug
# endpoint and `paracosm top` against the live standing query, and
# graceful shutdown on SIGTERM. Exits non-zero on any failure; CI runs
# this as a gating step.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${SERVE_SMOKE_PORT:-17400}"
DBG_PORT="${SERVE_SMOKE_DEBUG_PORT:-18081}"
ADDR="127.0.0.1:${PORT}"
DBG="127.0.0.1:${DBG_PORT}"
WORK="$(mktemp -d)"
trap 'kill "${CLI_PID:-}" "${SRV_PID:-}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "== gendata =="
go run ./cmd/gendata -out "$WORK" -scale 0.001

echo "== build =="
go build -o "$WORK/paracosm" ./cmd/paracosm
QUERY="$(ls "$WORK"/query_*.txt | head -1)"
STREAM="$WORK/insertion_stream.txt"

echo "== sequential oracle =="
"$WORK/paracosm" \
    -data "$WORK/data_graph.txt" -query "$QUERY" -stream "$STREAM" \
    -algo GraphFlow -threads 1 -inter=false >"$WORK/oracle.out"
ORACLE="$(sed -n 's/^matches *: \(+[0-9]* \/ -[0-9]*\).*/\1/p' "$WORK/oracle.out")"
echo "oracle matches: $ORACLE"

echo "== serve on $ADDR =="
"$WORK/paracosm" serve -data "$WORK/data_graph.txt" -addr "$ADDR" \
    -threads 2 -debug-addr "$DBG" >"$WORK/serve.out" 2>&1 &
SRV_PID=$!

ok=""
for _ in $(seq 1 60); do
    if curl -sf "http://$DBG/healthz" >/dev/null 2>&1; then
        ok=1
        break
    fi
    if ! kill -0 "$SRV_PID" 2>/dev/null; then
        echo "serve exited before becoming healthy:" >&2
        cat "$WORK/serve.out" >&2
        exit 1
    fi
    sleep 0.5
done
if [ -z "$ok" ]; then
    echo "serve never became healthy" >&2
    cat "$WORK/serve.out" >&2
    exit 1
fi

echo "== client: register, subscribe, stream, flush =="
# -linger keeps the connection (and therefore the registered standing
# query) alive after the totals print, so the /queries and `paracosm
# top` checks below observe a live query. Totals appear before the
# linger, so poll for them.
"$WORK/paracosm" client -addr "$ADDR" -name smoke -algo GraphFlow \
    -query "$QUERY" -stream "$STREAM" -subscribe -linger 60s \
    >"$WORK/client.out" &
CLI_PID=$!
ok=""
for _ in $(seq 1 120); do
    if grep -q '^matches' "$WORK/client.out" 2>/dev/null; then
        ok=1
        break
    fi
    if ! kill -0 "$CLI_PID" 2>/dev/null; then
        echo "client exited before reporting totals:" >&2
        cat "$WORK/client.out" >&2
        exit 1
    fi
    sleep 0.5
done
if [ -z "$ok" ]; then
    echo "client never reported totals" >&2
    cat "$WORK/client.out" >&2
    exit 1
fi
cat "$WORK/client.out"
GOT="$(sed -n 's/^matches *: \(+[0-9]* \/ -[0-9]*\).*/\1/p' "$WORK/client.out")"
grep -q 'dropped 0' "$WORK/client.out"

if [ "$GOT" != "$ORACLE" ]; then
    echo "streamed delta totals '$GOT' != sequential oracle '$ORACLE'" >&2
    exit 1
fi
echo "delta totals match the sequential oracle: $GOT"

echo "== /metrics serving-layer gauges =="
curl -s "http://$DBG/metrics" | tee "$WORK/metrics.txt" | grep '^paracosm_server_' | head
grep -q '^paracosm_server_connections' "$WORK/metrics.txt"
grep -q '^paracosm_server_deltas_dropped_total' "$WORK/metrics.txt"
ING="$(sed -n 's/^paracosm_server_updates_ingested_total \([0-9][0-9]*\)$/\1/p' "$WORK/metrics.txt")"
if [ "${ING:-0}" -le 0 ]; then
    echo "no updates ingested per /metrics" >&2
    exit 1
fi
# Per-query labeled series: the lingering client keeps "smoke" live.
grep -q '^paracosm_query_updates{name="smoke"}' "$WORK/metrics.txt"
# Pipeline stage histograms fed by the serving path.
grep -q '^paracosm_stage_commit_seconds_count' "$WORK/metrics.txt"

echo "== /queries lists the live standing query =="
curl -s "http://$DBG/queries" | tee "$WORK/queries.json"
grep -q '"name": "smoke"' "$WORK/queries.json"
QUPD="$(sed -n 's/^ *"updates": \([0-9][0-9]*\),$/\1/p' "$WORK/queries.json" | head -1)"
if [ "${QUPD:-0}" -le 0 ]; then
    echo "query 'smoke' shows no processed updates in /queries" >&2
    exit 1
fi
echo "query 'smoke' processed $QUPD updates"

echo "== paracosm top (one shot) =="
"$WORK/paracosm" top -addr "$DBG" -n 5 -once | tee "$WORK/top.out"
grep -q 'QUERY' "$WORK/top.out"
grep -q 'smoke' "$WORK/top.out"

kill "$CLI_PID" 2>/dev/null || true
wait "$CLI_PID" 2>/dev/null || true
CLI_PID=""

echo "== graceful shutdown (SIGTERM) =="
kill -TERM "$SRV_PID"
wait "$SRV_PID"
SRV_PID=""
grep -q 'shutting down' "$WORK/serve.out"
grep -q 'ingested' "$WORK/serve.out"

echo "serve smoke OK"
