package paracosm

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"paracosm/internal/algo"
	"paracosm/internal/core"
	"paracosm/internal/dataset"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/refmatch"
	"paracosm/internal/stream"
)

// TestFilePipeline exercises the full cmd-style flow without exec:
// synthesize a dataset, serialize graph + stream to disk (gendata), read
// them back (paracosm CLI), run an engine over them, and validate against
// the reference matcher.
func TestFilePipeline(t *testing.T) {
	dir := t.TempDir()
	d := dataset.AmazonLike(dataset.Scale(0.0005), dataset.Seed(9))

	// gendata side: write artifacts.
	gPath := filepath.Join(dir, "data_graph.txt")
	sPath := filepath.Join(dir, "stream.txt")
	gf, err := os.Create(gPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Graph.Write(gf); err != nil {
		t.Fatal(err)
	}
	gf.Close()
	sf, err := os.Create(sPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Stream[:80].Write(sf); err != nil {
		t.Fatal(err)
	}
	sf.Close()

	// paracosm CLI side: read artifacts back.
	gf2, err := os.Open(gPath)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Read(gf2)
	gf2.Close()
	if err != nil {
		t.Fatal(err)
	}
	sf2, err := os.Open(sPath)
	if err != nil {
		t.Fatal(err)
	}
	s, err := stream.Read(sf2)
	sf2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != d.Graph.NumEdges() || len(s) != 80 {
		t.Fatalf("round trip sizes: %d edges, %d updates", g.NumEdges(), len(s))
	}

	q, err := d.RandomQuery(4)
	if err != nil {
		t.Fatal(err)
	}

	// Reference totals computed on the file-loaded graph.
	var wantPos, wantNeg uint64
	h := g.Clone()
	for _, upd := range s {
		p, n := refmatch.Delta(h, q, upd, refmatch.Options{})
		wantPos += p
		wantNeg += n
		if err := upd.Apply(h); err != nil {
			t.Fatal(err)
		}
	}

	e, err := algo.ByName("TurboFlux")
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(e.New(), core.Threads(2), core.BatchSize(8))
	if err := eng.Init(g, q); err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if st.Positive != wantPos || st.Negative != wantNeg {
		t.Fatalf("file pipeline totals (+%d,-%d), reference (+%d,-%d)",
			st.Positive, st.Negative, wantPos, wantNeg)
	}
}

// TestQueryFileFormat round-trips a query through the graph text format
// the way cmd/gendata writes and cmd/paracosm reads them.
func TestQueryFileFormat(t *testing.T) {
	d := dataset.OrkutLike(dataset.Scale(0.0003), dataset.Seed(5))
	q, err := d.RandomQuery(5)
	if err != nil {
		t.Fatal(err)
	}
	// Serialize as gendata does: the query in graph format.
	path := filepath.Join(t.TempDir(), "q.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < q.NumVertices(); u++ {
		if _, err := f.WriteString(
			"v " + itoa(u) + " " + itoa(int(q.Label(uint8(u)))) + "\n"); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range q.Edges() {
		if _, err := f.WriteString(
			"e " + itoa(int(e.U)) + " " + itoa(int(e.V)) + " " + itoa(int(e.ELabel)) + "\n"); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	// Parse as cmd/paracosm does.
	f2, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	gq, err := graph.Read(f2)
	f2.Close()
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]graph.Label, gq.NumVertices())
	for v := range labels {
		labels[v] = gq.Label(graph.VertexID(v))
	}
	q2, err := query.New(labels)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < gq.NumVertices(); v++ {
		for _, nb := range gq.Neighbors(graph.VertexID(v)) {
			if graph.VertexID(v) < nb.ID {
				if err := q2.AddEdge(query.VertexID(v), query.VertexID(nb.ID), nb.ELabel); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := q2.Finalize(); err != nil {
		t.Fatal(err)
	}
	if q2.NumVertices() != q.NumVertices() || q2.NumEdges() != q.NumEdges() {
		t.Fatalf("query round trip: (%d,%d) -> (%d,%d)",
			q.NumVertices(), q.NumEdges(), q2.NumVertices(), q2.NumEdges())
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
