package paracosm

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"paracosm/internal/algo"
	"paracosm/internal/algo/algotest"
	"paracosm/internal/bench"
	"paracosm/internal/core"
	"paracosm/internal/dataset"
	"paracosm/internal/graph"
	"paracosm/internal/obs"
)

// benchConfig is a small-but-representative configuration so the full
// suite completes in minutes. The cmd/experiments binary runs the same
// experiments at paper scale.
func benchConfig() bench.Config {
	return bench.Config{
		Scale:          0.001,
		Seed:           1,
		QueriesPerSize: 1,
		StreamCap:      120,
		Budget:         500 * time.Millisecond,
		Threads:        8,
	}.Defaults()
}

// benchmarkExperiment reruns one table/figure regeneration end to end.
func benchmarkExperiment(b *testing.B, id string) {
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper table/figure (see DESIGN.md §4 for the index).

func BenchmarkTable1Reference(b *testing.B)    { benchmarkExperiment(b, "table1") }
func BenchmarkFig4SingleThreaded(b *testing.B) { benchmarkExperiment(b, "fig4") }
func BenchmarkTable3Breakdown(b *testing.B)    { benchmarkExperiment(b, "table3") }
func BenchmarkTable4UnsafeRatio(b *testing.B)  { benchmarkExperiment(b, "table4") }
func BenchmarkFig7Speedup(b *testing.B)        { benchmarkExperiment(b, "fig7") }
func BenchmarkFig8BigQueries(b *testing.B)     { benchmarkExperiment(b, "fig8") }
func BenchmarkTable6SuccessRate(b *testing.B)  { benchmarkExperiment(b, "table6") }
func BenchmarkFig9Scalability(b *testing.B)    { benchmarkExperiment(b, "fig9") }
func BenchmarkFig10LoadBalance(b *testing.B)   { benchmarkExperiment(b, "fig10") }
func BenchmarkFig11InterUpdate(b *testing.B)   { benchmarkExperiment(b, "fig11") }
func BenchmarkFig12Filtering(b *testing.B)     { benchmarkExperiment(b, "fig12") }
func BenchmarkModelAnalytical(b *testing.B)    { benchmarkExperiment(b, "model") }

// Micro-benchmarks of the moving parts the figures are built from.

// BenchmarkProcessUpdate measures one full update through each algorithm
// (apply + ADS maintenance + incremental search), single-threaded.
func BenchmarkProcessUpdate(b *testing.B) {
	d := dataset.LiveJournalLike(dataset.Scale(0.001), dataset.Seed(3))
	q, err := d.RandomQuery(6)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range algo.Registry() {
		b.Run(e.Name, func(b *testing.B) {
			g := d.Graph.Clone()
			eng := core.New(e.New(), core.Threads(1), core.InterUpdate(false))
			if err := eng.Init(g, q); err != nil {
				b.Fatal(err)
			}
			s := d.Stream
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				upd := s[i%len(s)]
				if _, err := eng.ProcessUpdate(ctx, upd); err != nil {
					// Duplicate inserts when wrapping around: reset graph.
					b.StopTimer()
					g = d.Graph.Clone()
					eng = core.New(e.New(), core.Threads(1), core.InterUpdate(false))
					if err := eng.Init(g, q); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
			}
		})
	}
}

// BenchmarkProcessUpdateTracer measures observability overhead on the
// per-update hot path: the same workload with no tracer and with a tracer
// attached. The allocs/op columns are the layer's contract — the nil path
// allocates nothing, and attaching a tracer adds zero allocations (events
// are stack-built, the ring preallocated, histogram memory fixed).
func BenchmarkProcessUpdateTracer(b *testing.B) {
	d := dataset.LiveJournalLike(dataset.Scale(0.001), dataset.Seed(3))
	q, err := d.RandomQuery(6)
	if err != nil {
		b.Fatal(err)
	}
	e, err := algo.ByName("GraphFlow")
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		tracer *obs.Tracer
	}{
		{"nil", nil},
		{"traced", obs.NewTracer(obs.DefaultRingCap)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			g := d.Graph.Clone()
			eng := core.New(e.New(), core.Threads(1), core.InterUpdate(false), core.WithTracer(tc.tracer))
			defer eng.Close()
			if err := eng.Init(g, q); err != nil {
				b.Fatal(err)
			}
			s := d.Stream
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				upd := s[i%len(s)]
				if _, err := eng.ProcessUpdate(ctx, upd); err != nil {
					b.StopTimer()
					g = d.Graph.Clone()
					eng = core.New(e.New(), core.Threads(1), core.InterUpdate(false), core.WithTracer(tc.tracer))
					if err := eng.Init(g, q); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
			}
		})
	}
}

// BenchmarkClassifier measures the three-stage update classifier alone —
// the per-update cost of inter-update parallelism.
func BenchmarkClassifier(b *testing.B) {
	d := dataset.OrkutLike(dataset.Scale(0.001), dataset.Seed(3))
	q, err := d.RandomQuery(6)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range algo.Registry() {
		b.Run(e.Name, func(b *testing.B) {
			a := e.New()
			if err := a.Build(d.Graph.Clone(), q); err != nil {
				b.Fatal(err)
			}
			s := d.Stream
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.AffectsADS(s[i%len(s)])
			}
		})
	}
}

// BenchmarkUpdateADS measures incremental index maintenance in isolation
// (the T_ADS of the §4.3 model).
func BenchmarkUpdateADS(b *testing.B) {
	d := dataset.LiveJournalLike(dataset.Scale(0.001), dataset.Seed(3))
	q, err := d.RandomQuery(6)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"TurboFlux", "Symbi", "CaLiG"} {
		e, err := algo.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			g := d.Graph.Clone()
			a := e.New()
			if err := a.Build(g, q); err != nil {
				b.Fatal(err)
			}
			s := d.Stream
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				upd := s[i%len(s)]
				if i%len(s) == 0 && i > 0 {
					b.StopTimer()
					g = d.Graph.Clone()
					a = e.New()
					if err := a.Build(g, q); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				if err := upd.Apply(g); err == nil {
					a.UpdateADS(upd)
				}
			}
		})
	}
}

// BenchmarkGraphMutation measures the dynamic graph substrate.
func BenchmarkGraphMutation(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := algotest.RandomGraph(rng, 10000, 80000, 8, 2)
	n := g.NumVertices()
	b.Run("AddRemoveEdge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u := graph.VertexID(rng.Intn(n))
			v := graph.VertexID(rng.Intn(n))
			if g.AddEdge(u, v, 0) {
				g.RemoveEdge(u, v)
			}
		}
	})
	b.Run("LockedAddRemoveEdge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u := graph.VertexID(rng.Intn(n))
			v := graph.VertexID(rng.Intn(n))
			if g.LockedAddEdge(u, v, 0) {
				g.LockedRemoveEdge(u, v)
			}
		}
	})
}

// BenchmarkInnerExecutor measures parallel search thread-scaling on one
// deliberately heavy update (simulated schedule, so the numbers are
// meaningful on any machine).
func BenchmarkInnerExecutor(b *testing.B) {
	d := dataset.LiveJournalLike(dataset.Scale(0.002), dataset.Seed(5))
	q, err := d.RandomQuery(9)
	if err != nil {
		b.Fatal(err)
	}
	e, err := algo.ByName("GraphFlow")
	if err != nil {
		b.Fatal(err)
	}
	for _, threads := range []int{1, 8, 32} {
		name := fmt.Sprintf("T%d", threads)
		if threads > 1 {
			name = fmt.Sprintf("simT%d", threads)
		}
		b.Run(name, func(b *testing.B) {
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := d.Graph.Clone()
				eng := core.New(e.New(), core.Threads(threads), core.Simulate(threads > 1), core.InterUpdate(false))
				if err := eng.Init(g, q); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, upd := range d.Stream[:200] {
					if _, err := eng.ProcessUpdate(ctx, upd); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
