# ParaCOSM reproduction — common entry points.

GO ?= go

.PHONY: all build lint lint-json test race bench bench-json bench-compare debug-smoke serve-smoke metrics-lint recover-smoke fuzz experiments examples clean

all: lint test

build:
	$(GO) build ./...
	$(GO) vet ./...

# lint = build + go vet (via build) + the project-specific concurrency and
# allocation analyzers (lockguard, lockescape, atomicmix, goroutineleak,
# waitgroup, chandrop, noalloc, rangedeterminism, lockcopy). Non-zero exit
# on any finding, including stale //lint:ignore directives (strict mode is
# the default); see DESIGN.md "Static analysis layer" for the annotation
# grammar and escape hatches.
lint: build
	$(GO) run ./cmd/paracosmvet ./...

# Machine-readable lint report: findings as JSON plus the ignore-directive
# inventory on stderr. CI uploads paracosmvet.json as a build artifact.
lint-json:
	$(GO) run ./cmd/paracosmvet -json ./... | tee paracosmvet.json
	$(GO) run ./cmd/paracosmvet -ignores ./... 1>&2

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

# Machine-readable perf baseline: the Fig 7 microbench against the real
# (non-simulated) worker pool — updates/sec, escalation rate and
# park/wakeup counters — plus the shared-graph multi-query rows
# (registrations/sec, bytes/query vs a private clone, lockstep
# updates/sec at 100/1k/10k standing queries). CI runs this as a
# non-gating step.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_pr9.json

# Non-gating comparison of the current baseline against the previous PR's
# committed one (updates/sec, p99, kernel counters, multi-query rows).
# Always exits 0.
bench-compare:
	$(GO) run ./cmd/benchcmp -old BENCH_pr8.json -new BENCH_pr9.json

# End-to-end smoke of the observability layer: run paracosm with
# -debug-addr on a generated dataset and curl /healthz, /metrics and
# /trace while the server lingers.
debug-smoke:
	./scripts/debug_smoke.sh

# End-to-end smoke of the serving layer: paracosm serve + paracosm client
# over TCP, streamed delta totals checked against the sequential oracle,
# plus /queries and `paracosm top` against the live standing query.
serve-smoke:
	./scripts/serve_smoke.sh

# Prometheus exposition lint: scrape a live server twice (idle, then
# after client traffic) and validate both scrapes with cmd/metricslint —
# unique series, valid names and label escaping, one TYPE per metric,
# monotone _total counters.
metrics-lint:
	./scripts/metrics_lint.sh

# Crash-recovery smoke of the durability layer: kill -9 a WAL-enabled
# server mid-stream, restart it, and require the recovered totals to
# equal the sequential prefix oracle — then resume the stream and match
# the uninterrupted full-stream oracle.
recover-smoke:
	./scripts/recover_smoke.sh

fuzz:
	$(GO) test -fuzz FuzzRead -fuzztime 30s ./internal/graph/
	$(GO) test -fuzz FuzzLabelIndex -fuzztime 30s ./internal/graph/
	$(GO) test -fuzz FuzzRead -fuzztime 30s ./internal/stream/
	$(GO) test -fuzz FuzzCoalesce -fuzztime 30s ./internal/stream/
	$(GO) test -fuzz FuzzWireRoundTrip -fuzztime 30s ./internal/server/
	$(GO) test -fuzz FuzzWALRecord -fuzztime 30s ./internal/wal/

# Regenerate every paper table/figure plus ablations at the default
# laptop-friendly configuration (see EXPERIMENTS.md for the recorded run).
experiments:
	$(GO) run ./cmd/experiments -run all \
		-scale 0.005 -queries 4 -updates 2000 -budget 1s -threads 32

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/frauddetection
	$(GO) run ./examples/recommendation
	$(GO) run ./examples/netmon
	$(GO) run ./examples/multiquery

clean:
	$(GO) clean ./...
