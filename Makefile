# ParaCOSM reproduction — common entry points.

GO ?= go

.PHONY: all build test race bench fuzz experiments examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/concurrent/ ./internal/graph/ .

bench:
	$(GO) test -bench . -benchmem ./...

fuzz:
	$(GO) test -fuzz FuzzRead -fuzztime 30s ./internal/graph/
	$(GO) test -fuzz FuzzRead -fuzztime 30s ./internal/stream/

# Regenerate every paper table/figure plus ablations at the default
# laptop-friendly configuration (see EXPERIMENTS.md for the recorded run).
experiments:
	$(GO) run ./cmd/experiments -run all \
		-scale 0.005 -queries 4 -updates 2000 -budget 1s -threads 32

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/frauddetection
	$(GO) run ./examples/recommendation
	$(GO) run ./examples/netmon
	$(GO) run ./examples/multiquery

clean:
	$(GO) clean ./...
