package paracosm_test

import (
	"context"
	"fmt"

	"paracosm"
)

// ExampleNew demonstrates the complete lifecycle: build a data graph and a
// query, wrap a baseline algorithm in ParaCOSM, and process updates.
func ExampleNew() {
	// Data graph: person(0) - account(1) - person(0).
	g := paracosm.NewGraph(3)
	p1 := g.AddVertex(0)
	acct := g.AddVertex(1)
	p2 := g.AddVertex(0)
	g.AddEdge(p1, acct, 0)

	// Query: two persons sharing an account.
	q := paracosm.MustNewQuery([]paracosm.Label{0, 1, 0})
	q.MustAddEdge(0, 1, 0)
	q.MustAddEdge(1, 2, 0)
	if err := q.Finalize(); err != nil {
		panic(err)
	}

	eng := paracosm.New(paracosm.Symbi(), paracosm.Threads(2))
	if err := eng.Init(g, q); err != nil {
		panic(err)
	}

	delta, err := eng.ProcessUpdate(context.Background(), paracosm.AddEdge(p2, acct, 0))
	if err != nil {
		panic(err)
	}
	fmt.Printf("new matches: %d\n", delta.Positive)
	// Output: new matches: 2
}

// ExampleEngine_Run processes a whole update stream and reads aggregate
// statistics, including the safe-update ratio of the inter-update
// classifier.
func ExampleEngine_Run() {
	g := paracosm.NewGraph(4)
	a := g.AddVertex(0)
	b := g.AddVertex(1)
	c := g.AddVertex(2) // label 2 appears in no query: edges to it are safe
	d := g.AddVertex(2)

	q := paracosm.MustNewQuery([]paracosm.Label{0, 1})
	q.MustAddEdge(0, 1, 0)
	if err := q.Finalize(); err != nil {
		panic(err)
	}

	eng := paracosm.New(paracosm.GraphFlow(), paracosm.Threads(2), paracosm.BatchSize(4))
	if err := eng.Init(g, q); err != nil {
		panic(err)
	}
	stats, err := eng.Run(context.Background(), paracosm.Stream{
		paracosm.AddEdge(a, b, 0), // creates a match
		paracosm.AddEdge(c, d, 0), // label-safe: skipped entirely
		paracosm.DeleteEdge(a, b), // expires the match
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("+%d -%d, %d of %d updates safe\n",
		stats.Positive, stats.Negative, stats.SafeUpdates, stats.Updates)
	// Output: +1 -1, 1 of 3 updates safe
}

// ExampleNewMulti monitors two patterns over one stream with query-level
// parallelism.
func ExampleNewMulti() {
	g := paracosm.NewGraph(4)
	u1 := g.AddVertex(0)
	u2 := g.AddVertex(0)
	shop := g.AddVertex(1)

	friends := paracosm.MustNewQuery([]paracosm.Label{0, 0})
	friends.MustAddEdge(0, 1, 0)
	if err := friends.Finalize(); err != nil {
		panic(err)
	}
	visit := paracosm.MustNewQuery([]paracosm.Label{0, 1})
	visit.MustAddEdge(0, 1, 0)
	if err := visit.Finalize(); err != nil {
		panic(err)
	}

	m := paracosm.NewMulti(paracosm.Threads(2))
	m.Register("friends", paracosm.GraphFlow(), friends)
	m.Register("visits", paracosm.TurboFlux(), visit)
	if err := m.Init(g); err != nil {
		panic(err)
	}
	if err := m.Run(context.Background(), paracosm.Stream{
		paracosm.AddEdge(u1, u2, 0),
		paracosm.AddEdge(u1, shop, 0),
	}); err != nil {
		panic(err)
	}
	st := m.Stats()
	fmt.Printf("friends: %d, visits: %d\n", st["friends"].Positive, st["visits"].Positive)
	// Output: friends: 2, visits: 1
}
